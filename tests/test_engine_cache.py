"""Correctness of the result cache: keys, locking, stats, lifecycle.

Regression tests for three latent bugs exposed by the concurrent engine
work:

* **Unstable cache keys** — option values used to be rendered with bare
  ``repr``; a custom object rendered its *address* (identical calls
  never hit, and address reuse could alias two different objects into a
  false hit).  Keys now go through
  :func:`repro.engine.cache.canonical_option_value`, which refuses
  values it cannot render stably.
* **Unsynchronised LRU** — ``ResultCache`` mutated an ``OrderedDict``
  and counters without a lock; hammering it from many threads corrupted
  the LRU order or lost updates.
* **Stats surviving ``clear()``** — ``hit_rate`` after a reset reported
  the previous workload.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import Database, Engine, Relation, Session
from repro.engine import (
    EngineError,
    EvaluationStrategy,
    ResultCache,
    StrategyCapabilities,
    StrategyOutcome,
    canonical_option_value,
    canonical_options,
    register_strategy,
    unregister_strategy,
)


@pytest.fixture
def tiny_db() -> Database:
    return Database.from_dict({"R": (("a",), [(1,), (2,)])})


@pytest.fixture
def option_strategy():
    """A registered strategy that accepts (and ignores) arbitrary options."""

    calls = []

    @register_strategy("test-options")
    class _OptionStrategy(EvaluationStrategy):
        capabilities = StrategyCapabilities(semantics=("set",))

        def run(self, query, database, *, semantics, **options):
            calls.append(dict(options))
            answer = Relation(("a",), [(1,)])
            return StrategyOutcome(answer=answer)

    yield calls
    unregister_strategy("test-options")


# ----------------------------------------------------------------------
# Cache keys: canonical option rendering
# ----------------------------------------------------------------------
class _Opaque:
    """A custom option object with the default address-bearing repr."""


def test_equal_dict_options_hit_regardless_of_insertion_order(
    tiny_db, option_strategy
):
    # repr({"a": 1, "b": 2}) != repr({"b": 2, "a": 1}) even though the
    # dicts are equal — the old repr-based key missed on the second call.
    engine = Engine()
    query = "SELECT a FROM R"
    first = engine.evaluate(
        query, tiny_db, strategy="test-options", payload={"a": 1, "b": 2}
    )
    second = engine.evaluate(
        query, tiny_db, strategy="test-options", payload={"b": 2, "a": 1}
    )
    assert not first.from_cache
    assert second.from_cache, "equal-content option dicts must share a cache key"
    assert len(option_strategy) == 1


def test_custom_object_option_raises_instead_of_unstable_key(
    tiny_db, option_strategy
):
    # The old key rendered '<_Opaque object at 0x...>': identical calls
    # never hit, and after address reuse two different objects could
    # collide into a false hit.  Canonicalization refuses such values.
    engine = Engine()
    with pytest.raises(EngineError, match="stable cache key"):
        engine.evaluate(
            "SELECT a FROM R", tiny_db, strategy="test-options", knob=_Opaque()
        )


def test_custom_object_option_allowed_when_cache_bypassed(
    tiny_db, option_strategy
):
    engine = Engine()
    result = engine.evaluate(
        "SELECT a FROM R",
        tiny_db,
        strategy="test-options",
        use_cache=False,
        knob=_Opaque(),
    )
    assert not result.from_cache
    assert len(option_strategy) == 1


def test_cache_bypass_escape_hatch_works_on_the_sharded_path(tiny_db):
    # The sharded planner builds per-shard cache keys from the options;
    # with use_cache=False it must not canonicalize them at all, or the
    # escape hatch the EngineError message recommends would not exist
    # for shard-aware strategies.
    from repro import builder as rb, evaluate_algebra
    from repro.sharding import ShardedDatabase
    from repro.sharding.evaluate import SHARDABLE_STRATEGIES, ShardableSpec, merge_naive
    from repro.sharding.planner import NAIVE_LINEAGE_OPS

    calls = []

    @register_strategy("test-shard-options")
    class _ShardOptionStrategy(EvaluationStrategy):
        capabilities = StrategyCapabilities(semantics=("set",))

        def run(self, query, database, *, semantics, **options):
            calls.append(dict(options))
            # Shard workers see the rewritten plan over renamed
            # fragment relations — evaluate it, don't index by name.
            return StrategyOutcome(answer=evaluate_algebra(query.algebra, database))

    SHARDABLE_STRATEGIES["test-shard-options"] = ShardableSpec(
        lineage_ops=NAIVE_LINEAGE_OPS, merge=merge_naive
    )
    try:
        sharded = ShardedDatabase.from_database(tiny_db, 2)
        engine = Engine()
        result = engine.evaluate(
            rb.relation("R"),
            sharded,
            strategy="test-shard-options",
            use_cache=False,
            knob=_Opaque(),
        )
        assert result.metadata["sharding"]["mode"] == "distributed"
        assert all("knob" in c for c in calls)
    finally:
        SHARDABLE_STRATEGIES.pop("test-shard-options", None)
        unregister_strategy("test-shard-options")


def test_unknown_strategy_error_survives_pickling(tiny_db):
    # run_engine_task/run_shard_task resolve strategies by name inside
    # worker processes; the error must unpickle cleanly in the parent
    # or the failure breaks the whole process pool.
    import pickle

    from repro.engine import UnknownStrategyError

    engine = Engine()
    with pytest.raises(UnknownStrategyError) as excinfo:
        engine.evaluate("SELECT a FROM R", tiny_db, strategy="no-such")
    roundtripped = pickle.loads(pickle.dumps(excinfo.value))
    assert isinstance(roundtripped, UnknownStrategyError)
    assert roundtripped.name == "no-such"
    assert roundtripped.available == excinfo.value.available
    assert "no-such" in str(roundtripped)


def test_canonical_option_value_distinguishes_types_and_shapes():
    assert canonical_option_value(1) != canonical_option_value("1")
    assert canonical_option_value(True) != canonical_option_value(1)
    assert canonical_option_value([1, 2]) != canonical_option_value([2, 1])
    assert canonical_option_value({1, 2}) == canonical_option_value({2, 1})
    assert canonical_option_value({"a": 1, "b": 2}) == canonical_option_value(
        {"b": 2, "a": 1}
    )
    assert canonical_options({"x": (1, "1")}) == canonical_options({"x": (1, "1")})
    with pytest.raises(EngineError):
        canonical_option_value(object())
    with pytest.raises(EngineError):
        canonical_option_value({"nested": object()})


# ----------------------------------------------------------------------
# Locking: the hammer
# ----------------------------------------------------------------------
def test_result_cache_survives_concurrent_hammering():
    cache = ResultCache(max_size=32)
    threads = 8
    ops = 2000
    errors: list[BaseException] = []
    gets_per_thread = [0] * threads

    def hammer(thread_index: int) -> None:
        rng = random.Random(thread_index)
        try:
            for op in range(ops):
                key = ("k", rng.randrange(64))
                if rng.random() < 0.5:
                    cache.put(key, ("value", thread_index, op))
                else:
                    cache.get(key)
                    gets_per_thread[thread_index] += 1
                if rng.random() < 0.005:
                    cache.clear()
        except BaseException as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    workers = [
        threading.Thread(target=hammer, args=(i,)) for i in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    assert not errors, f"concurrent cache access raised: {errors[:3]}"
    # Every get incremented exactly one counter; clears moved counts to
    # the lifetime accumulators without losing any.
    lifetime = cache.lifetime_stats
    assert lifetime.hits + lifetime.misses == sum(gets_per_thread)
    assert len(cache) <= 32


def test_shared_engine_hammered_from_many_threads(tiny_db, option_strategy):
    engine = Engine(cache_size=8)
    queries = [f"SELECT a FROM R WHERE a = {i}" for i in range(6)]
    errors: list[BaseException] = []

    def worker(seed: int) -> None:
        rng = random.Random(seed)
        try:
            for _ in range(50):
                engine.evaluate(
                    rng.choice(queries), tiny_db, strategy="test-options"
                )
        except BaseException as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    workers = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()

    assert not errors, f"shared engine raised under concurrency: {errors[:3]}"
    stats = engine.cache_stats
    assert stats.hits + stats.misses == 6 * 50


# ----------------------------------------------------------------------
# Stats reset on clear
# ----------------------------------------------------------------------
def test_clear_resets_epoch_stats_and_keeps_lifetime():
    cache = ResultCache(max_size=4)
    cache.get("missing")            # miss
    cache.put("present", 1)
    cache.get("present")            # hit
    before = cache.stats
    assert (before.hits, before.misses) == (1, 1)

    cache.clear()
    after = cache.stats
    assert (after.hits, after.misses, after.size) == (0, 0, 0)
    assert after.hit_rate == 0.0, "hit_rate after clear must not report the past"

    lifetime = cache.lifetime_stats
    assert (lifetime.hits, lifetime.misses) == (1, 1)

    cache.get("missing-again")      # second epoch
    assert cache.stats.misses == 1
    assert cache.lifetime_stats.misses == 2


def test_engine_clear_cache_resets_hit_rate(tiny_db, option_strategy):
    engine = Engine()
    engine.evaluate("SELECT a FROM R", tiny_db, strategy="test-options")
    engine.evaluate("SELECT a FROM R", tiny_db, strategy="test-options")
    assert engine.cache_stats.hits == 1
    engine.clear_cache()
    assert engine.cache_stats.hits == 0
    assert engine.cache_stats.hit_rate == 0.0


# ----------------------------------------------------------------------
# Session lifecycle
# ----------------------------------------------------------------------
class _RecordingExecutor:
    kind = "recording"

    def __init__(self):
        self.closed = False

    def run(self, tasks):  # pragma: no cover - never exercised here
        return []

    def close(self):
        self.closed = True


def test_session_context_manager_closes_owned_engine(tiny_db):
    recording = _RecordingExecutor()
    with Session(tiny_db) as session:
        session.engine._executors["fake"] = recording
    assert recording.closed, "session exit must close the engine it created"
    assert session.engine._executors == {}


def test_shared_engine_survives_session_exit(tiny_db):
    recording = _RecordingExecutor()
    engine = Engine()
    engine._executors["fake"] = recording
    with Session(tiny_db, engine=engine) as session:
        session.evaluate("SELECT a FROM R", strategy="naive")
    assert not recording.closed, "a shared engine must survive session exit"
    # ... and is still usable afterwards.
    result = engine.evaluate("SELECT a FROM R", tiny_db, strategy="naive")
    assert result.rows_set()
    engine.close()
    assert recording.closed


def test_with_database_sessions_do_not_close_the_parent_engine(tiny_db):
    recording = _RecordingExecutor()
    with Session(tiny_db) as parent:
        parent.engine._executors["fake"] = recording
        other = Database.from_dict({"R": (("a",), [(3,)])})
        with parent.with_database(other) as child:
            child.evaluate("SELECT a FROM R", strategy="naive")
        assert not recording.closed, "derived sessions share the parent engine"
    assert recording.closed
