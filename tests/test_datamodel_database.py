"""Tests for databases, valuations, unification, homomorphisms, Codd nulls."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.datamodel import (
    Database,
    Null,
    Relation,
    Valuation,
    bijective_valuation,
    coddify_database,
    enumerate_valuations,
    equal_up_to_null_renaming,
    find_homomorphism,
    is_codd_database,
    is_homomorphism,
    is_onto_homomorphism,
    is_strong_onto_homomorphism,
    most_general_unifier,
    unifiable,
    unify,
)


class TestDatabase:
    def test_from_dict_and_access(self, rs_database):
        assert set(rs_database.relation_names()) == {"R", "S"}
        assert rs_database["R"].rows_set() == {(1,)}
        with pytest.raises(KeyError):
            rs_database["missing"]

    def test_const_null_dom(self, rs_database, null_x):
        assert rs_database.constants() == {1}
        assert rs_database.nulls() == {null_x}
        assert rs_database.active_domain() == {1, null_x}
        assert not rs_database.is_complete()

    def test_schema_induced(self, figure1):
        schema = figure1.schema()
        assert schema["Orders"].attributes == ("oid", "title", "price")

    def test_with_and_without_relation(self, rs_database):
        extended = rs_database.with_relation("T", Relation(("A",), [(9,)]))
        assert "T" in extended and "T" not in rs_database
        assert "R" not in extended.without_relation("R")

    def test_issubset_of(self, rs_database):
        smaller = Database({"R": Relation(("A",), [(1,)])})
        assert smaller.issubset_of(rs_database)
        assert not rs_database.issubset_of(smaller)


class TestValuation:
    def test_apply_to_value_tuple_relation_database(self, rs_database, null_x):
        valuation = Valuation({null_x: 7})
        assert valuation.apply_value(null_x) == 7
        assert valuation.apply_value(3) == 3
        assert valuation.apply_tuple((null_x, 1)) == (7, 1)
        assert valuation(rs_database)["S"].rows_set() == {(7,)}

    def test_unmapped_nulls_pass_through(self, null_x, null_y):
        valuation = Valuation({null_x: 1})
        assert valuation.apply_value(null_y) == null_y

    def test_bijective_valuation_avoids_domain(self, rs_database, null_x):
        valuation = bijective_valuation(rs_database, avoid={"@c1"})
        image = valuation[null_x]
        assert image not in rs_database.active_domain()
        assert image != "@c1"
        inverse = valuation.inverse()
        assert inverse.apply_value(image) == null_x

    def test_enumerate_valuations_count(self, null_x, null_y):
        valuations = list(enumerate_valuations([null_x, null_y], [1, 2, 3]))
        assert len(valuations) == 9
        assert len(set(valuations)) == 9

    def test_inverse_requires_injectivity(self, null_x, null_y):
        with pytest.raises(ValueError):
            Valuation({null_x: 1, null_y: 1}).inverse()


class TestUnification:
    def test_constants_unify_only_when_equal(self):
        assert unifiable((1, 2), (1, 2))
        assert not unifiable((1, 2), (1, 3))

    def test_null_unifies_with_constant(self, null_x):
        assert unifiable((1, null_x), (1, 2))
        assert unify((1, null_x), (1, 2)) == (1, 2)

    def test_repeated_null_must_take_one_value(self, null_x):
        assert not unifiable((null_x, null_x), (1, 2))
        assert unifiable((null_x, null_x), (1, 1))

    def test_null_chains_propagate_constants(self, null_x, null_y):
        # x ~ y and y ~ 3 forces x = 3; then x ~ 4 must fail.
        assert unifiable((null_x, null_y, null_y), (null_y, 3, null_x))
        assert not unifiable((null_x, null_x), (3, 4))

    def test_different_arities_never_unify(self, null_x):
        assert not unifiable((null_x,), (1, 2))

    def test_mgu_returns_bindings(self, null_x):
        mgu = most_general_unifier((null_x,), (5,))
        assert mgu == {null_x: 5}

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=4))
    def test_unifiability_is_reflexive_and_symmetric(self, values):
        null = Null("h")
        row = tuple(null if v == 0 else v for v in values)
        other = tuple(reversed(row))
        assert unifiable(row, row)
        assert unifiable(row, other) == unifiable(other, row)


class TestHomomorphisms:
    def test_valuation_is_homomorphism_to_world(self, rs_database, null_x):
        world = Valuation({null_x: 1})(rs_database)
        assert is_homomorphism({null_x: 1}, rs_database, world)
        assert is_strong_onto_homomorphism({null_x: 1}, rs_database, world)

    def test_onto_but_not_strong_onto(self, null_x, null_y):
        source = Database({"R": Relation(("A", "B"), [(null_x, null_y)])})
        target = Database({"R": Relation(("A", "B"), [(1, 2), (2, 1)])})
        mapping = {null_x: 1, null_y: 2}
        assert is_onto_homomorphism(mapping, source, target)
        assert not is_strong_onto_homomorphism(mapping, source, target)

    def test_find_homomorphism(self, graph_database):
        target = Database({"E": Relation(("src", "dst"), [(1, 5), (5, 2)])})
        mapping = find_homomorphism(graph_database, target)
        assert mapping is not None
        assert is_homomorphism(mapping, graph_database, target)

    def test_no_homomorphism_when_constants_missing(self, graph_database):
        target = Database({"E": Relation(("src", "dst"), [(7, 8)])})
        assert find_homomorphism(graph_database, target) is None


class TestCoddNulls:
    def test_coddify_makes_all_nulls_distinct(self, null_x):
        database = Database(
            {"R": Relation(("A", "B"), [(null_x, null_x), (1, null_x)])}
        )
        codd = coddify_database(database)
        assert is_codd_database(codd)
        assert len(codd.nulls()) == 3

    def test_is_codd_database_detects_repeats(self, null_x):
        database = Database({"R": Relation(("A", "B"), [(null_x, null_x)])})
        assert not is_codd_database(database)

    def test_equal_up_to_null_renaming(self, null_x, null_y):
        left = Database({"R": Relation(("A",), [(null_x,)])})
        right = Database({"R": Relation(("A",), [(null_y,)])})
        different = Database({"R": Relation(("A",), [(1,)])})
        assert equal_up_to_null_renaming(left, right)
        assert not equal_up_to_null_renaming(left, different)
