"""Tests for the workload generators and the benchmark harness helpers."""

from __future__ import annotations

import pytest

from repro.algebra import evaluate
from repro.approx import translate_guagliardo16
from repro.bench import ResultTable, relative_overhead, time_call
from repro.datamodel import is_codd_database
from repro.workloads import (
    GeneratorConfig,
    RelationSpec,
    TpchLiteConfig,
    figure1_database,
    figure1_database_with_null,
    generate_database,
    generate_tpch_lite,
    inject_nulls,
    tpch_lite_queries,
    unpaid_orders_algebra,
    customers_without_paid_order_algebra,
)


class TestFigure1Workload:
    def test_complete_database_shape(self, figure1):
        assert len(figure1["Orders"]) == 3
        assert figure1.is_complete()

    def test_null_variant_has_exactly_one_null(self, figure1_null):
        assert len(figure1_null.nulls()) == 1
        assert not figure1_null.is_complete()

    def test_algebra_queries_match_paper_on_complete_data(self, figure1):
        assert evaluate(unpaid_orders_algebra(), figure1).rows_set() == {("o3",)}
        assert evaluate(customers_without_paid_order_algebra(), figure1).rows_set() == set()


class TestGenerator:
    def test_deterministic_given_seed(self):
        config = GeneratorConfig(
            relations=[RelationSpec("R", ["a", "b"], 20), RelationSpec("S", ["a"], 10)],
            null_rate=0.2,
            seed=3,
        )
        assert generate_database(config) == generate_database(config)

    def test_null_rate_zero_is_complete(self):
        config = GeneratorConfig(relations=[RelationSpec("R", ["a"], 15)], null_rate=0.0)
        assert generate_database(config).is_complete()

    def test_null_injection_rates(self):
        config = GeneratorConfig(relations=[RelationSpec("R", ["a", "b"], 50)], seed=1)
        complete = generate_database(config)
        sparse = inject_nulls(complete, null_rate=0.1, seed=2)
        dense = inject_nulls(complete, null_rate=0.6, seed=2)
        assert len(sparse.nulls()) < len(dense.nulls())
        assert is_codd_database(sparse)

    def test_repeated_nulls_reuse_a_pool(self):
        config = GeneratorConfig(relations=[RelationSpec("R", ["a", "b"], 60)], seed=1)
        complete = generate_database(config)
        repeated = inject_nulls(complete, null_rate=0.5, repeated=True, seed=4)
        assert len(repeated.nulls()) <= 8

    def test_invalid_null_rate(self):
        with pytest.raises(ValueError):
            GeneratorConfig(relations=[RelationSpec("R", ["a"], 5)], null_rate=1.5)

    def test_protected_relations_untouched(self, figure1):
        injected = inject_nulls(
            figure1, null_rate=1.0, seed=0, protected_relations=("Orders",)
        )
        assert injected["Orders"].is_complete()
        assert not injected["Payments"].is_complete()


class TestTpchLite:
    def test_schema_and_foreign_key_shape(self):
        db = generate_tpch_lite(TpchLiteConfig())
        assert set(db.relation_names()) == {
            "region",
            "nation",
            "customer",
            "orders",
            "supplier",
            "part",
            "lineitem",
        }
        order_custkeys = {row[1] for row in db["orders"]}
        customer_keys = {row[0] for row in db["customer"]}
        assert order_custkeys <= customer_keys

    def test_null_rate_injection(self):
        db = generate_tpch_lite(TpchLiteConfig(null_rate=0.1))
        assert db.nulls()
        assert db["region"].is_complete()

    def test_all_queries_run_and_translate(self):
        db = generate_tpch_lite(TpchLiteConfig(null_rate=0.05))
        schema = db.schema()
        for name, query in tpch_lite_queries().items():
            plain = evaluate(query, db)
            pair = translate_guagliardo16(query, schema)
            certain = evaluate(pair.certain, db)
            possible = evaluate(pair.possible, db)
            assert certain.rows_set() <= possible.rows_set(), name
            assert certain.rows_set() <= possible.rows_set() | plain.rows_set(), name

    def test_rewriting_exact_on_complete_tpch(self):
        db = generate_tpch_lite(TpchLiteConfig(null_rate=0.0))
        schema = db.schema()
        for name, query in tpch_lite_queries().items():
            pair = translate_guagliardo16(query, schema)
            assert (
                evaluate(pair.certain, db).rows_set() == evaluate(query, db).rows_set()
            ), name


class TestBenchHarness:
    def test_result_table_rendering(self):
        table = ResultTable("Demo", ["name", "value"])
        table.add_row("a", 1.23456)
        table.add_row("b", 2)
        text = table.to_text()
        assert "Demo" in text and "1.235" in text and "b" in text

    def test_result_table_arity_check(self):
        table = ResultTable("Demo", ["x"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_time_call_and_overhead(self):
        elapsed, result = time_call(lambda: sum(range(1000)))
        assert result == sum(range(1000))
        assert elapsed >= 0
        assert relative_overhead(1.0, 1.5) == pytest.approx(50.0)
        assert relative_overhead(0.0, 1.0) == 0.0
