"""Tests for values, nulls and relations."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.datamodel import (
    Null,
    NullFactory,
    Relation,
    fresh_null,
    is_const,
    is_null,
    value_sort_key,
)


class TestNull:
    def test_equality_by_label(self):
        assert Null("a") == Null("a")
        assert Null("a") != Null("b")

    def test_null_is_not_equal_to_constants(self):
        assert Null("a") != "a"
        assert Null(1) != 1

    def test_hashable_and_usable_in_sets(self):
        values = {Null("a"), Null("a"), Null("b")}
        assert len(values) == 2

    def test_fresh_nulls_are_distinct(self):
        assert fresh_null() != fresh_null()

    def test_factory_produces_distinct_labels(self):
        factory = NullFactory(prefix="t")
        nulls = factory.fresh_many(10)
        assert len(set(nulls)) == 10

    def test_is_null_and_is_const(self):
        assert is_null(Null("a"))
        assert not is_null(5)
        assert is_const("abc")
        assert not is_const(Null("a"))

    def test_repr_mentions_label(self):
        assert "x" in repr(Null("x"))


class TestRelation:
    def test_rejects_wrong_arity_rows(self):
        with pytest.raises(ValueError):
            Relation(("A", "B"), [(1,)])

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(ValueError):
            Relation(("A", "A"), [])

    def test_set_and_bag_views(self):
        relation = Relation(("A",), [(1,), (1,), (2,)])
        assert relation.rows_set() == {(1,), (2,)}
        assert relation.multiplicity((1,)) == 2
        assert relation.total_multiplicity() == 3
        assert len(relation) == 2

    def test_distinct_collapses_multiplicities(self):
        relation = Relation(("A",), [(1,), (1,)])
        assert relation.distinct().multiplicity((1,)) == 1

    def test_constants_nulls_active_domain(self):
        null = Null("n")
        relation = Relation(("A", "B"), [(1, null)])
        assert relation.constants() == {1}
        assert relation.nulls() == {null}
        assert relation.active_domain() == {1, null}
        assert not relation.is_complete()

    def test_rename_and_with_attributes(self):
        relation = Relation(("A", "B"), [(1, 2)])
        renamed = relation.rename({"A": "X"})
        assert renamed.attributes == ("X", "B")
        relabeled = relation.with_attributes(("C", "D"))
        assert relabeled.attributes == ("C", "D")
        with pytest.raises(ValueError):
            relation.with_attributes(("only-one",))

    def test_map_values_merges_collisions(self):
        relation = Relation(("A",), [(1,), (2,)])
        mapped = relation.map_values(lambda v: 0)
        assert mapped.multiplicity((0,)) == 2

    def test_column_and_attribute_index(self):
        relation = Relation(("A", "B"), [(1, 2), (3, 4)])
        assert relation.attribute_index("B") == 1
        assert relation.column("A") == [1, 3]
        with pytest.raises(KeyError):
            relation.attribute_index("Z")

    def test_same_rows_as_ignores_names(self):
        left = Relation(("A",), [(1,), (1,)])
        right = Relation(("B",), [(1,)])
        assert left.same_rows_as(right)
        assert not left.same_rows_as(right, bag=True)

    def test_to_text_contains_rows(self):
        relation = Relation(("A",), [(1,)])
        assert "A" in relation.to_text()
        assert "1" in relation.to_text()

    def test_nullary_relation_behaves_as_boolean(self):
        true_rel = Relation((), [()])
        false_rel = Relation((), [])
        assert bool(true_rel) and not bool(false_rel)


class TestSortKey:
    @given(st.lists(st.one_of(st.integers(), st.text(max_size=4)), max_size=6))
    def test_sort_key_total_order_over_mixed_values(self, values):
        values = values + [Null("a"), Null("b")]
        ordered = sorted(values, key=value_sort_key)
        assert len(ordered) == len(values)

    def test_constants_sort_before_nulls(self):
        ordered = sorted([Null("a"), 5], key=value_sort_key)
        assert ordered[0] == 5
