"""The pluggable result-cache backends (:mod:`repro.engine.cache`).

The contract under test: ``CacheBackend`` is the only surface the engine
touches, the in-memory LRU and the disk backend are interchangeable, and
the disk backend makes results survive where the ROADMAP asked them to —
across engines, sessions, and *processes* — keyed by the same content
fingerprints, so no invalidation semantics change.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro import Database, Engine, Null, Session
from repro.algebra import builder as rb
from repro.algebra.conditions import Attr, Eq, Literal
from repro.engine import (
    CacheBackend,
    DiskCacheBackend,
    EngineError,
    MemoryCacheBackend,
    QueryResult,
    ResultCache,
    resolve_cache_backend,
)
from repro.sharding import ShardedDatabase


@pytest.fixture
def db() -> Database:
    return Database.from_dict(
        {
            "R": (("a", "b"), [(1, 2), (Null("x"), 3)]),
            "S": (("c",), [(2,), (3,)]),
        }
    )


QUERY = rb.select(rb.relation("R"), Eq(Attr("b"), Literal(3)))


class TestResolveBackend:
    def test_default_is_the_memory_lru(self):
        backend = resolve_cache_backend(None, cache_size=7)
        assert isinstance(backend, MemoryCacheBackend)
        assert backend.max_size == 7
        assert ResultCache is MemoryCacheBackend  # the historical name

    def test_disk_spec_builds_a_disk_backend(self, tmp_path):
        backend = resolve_cache_backend(f"disk:{tmp_path / 'cache'}")
        assert isinstance(backend, DiskCacheBackend)
        assert backend.path.is_dir()

    def test_instances_pass_through(self, tmp_path):
        backend = DiskCacheBackend(tmp_path)
        assert resolve_cache_backend(backend) is backend

    @pytest.mark.parametrize("bad", ["disk:", "redis://x", 42])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(EngineError):
            resolve_cache_backend(bad)

    def test_partial_duck_typed_backend_fails_fast_with_names(self):
        # get/put alone is not enough — the engine also needs
        # clear/enabled/stats; the resolver must say so up front instead
        # of leaving an AttributeError for the first evaluate().
        class _TwoMethods:
            def get(self, key):
                return None

            def put(self, key, value):
                pass

        with pytest.raises(EngineError, match="clear/enabled/stats"):
            resolve_cache_backend(_TwoMethods())


class TestDiskBackend:
    def test_round_trip_preserves_query_results(self, tmp_path, db):
        result = Engine().evaluate(QUERY, db, strategy="naive", use_cache=False)
        backend = DiskCacheBackend(tmp_path)
        key = ("q-fp", "db-fp", "naive", "set", ())
        backend.put(key, result)
        restored = backend.get(key)
        assert isinstance(restored, QueryResult)
        assert restored.relation.rows_bag() == result.relation.rows_bag()
        assert restored.tuples == result.tuples
        assert restored.metadata == result.metadata
        assert len(backend) == 1

    def test_get_is_a_miss_on_unknown_and_corrupt_entries(self, tmp_path):
        backend = DiskCacheBackend(tmp_path)
        assert backend.get(("nope",)) is None
        # A torn/corrupt entry must degrade to a miss, not an error.
        entry = backend._entry_path(("torn",))
        entry.write_bytes(b"not a pickle")
        assert backend.get(("torn",)) is None
        # An entry pickled by an incompatible version whose class module
        # no longer exists must be a miss too (regression: raised
        # ModuleNotFoundError through evaluate()).
        stale = backend._entry_path(("stale",))
        stale.write_bytes(b"cno_such_repro_module\nNope\n.")
        assert backend.get(("stale",)) is None
        stats = backend.stats
        assert stats.misses == 3 and stats.hits == 0

    def test_eviction_drops_the_least_recently_used_entry(self, tmp_path):
        backend = DiskCacheBackend(tmp_path, max_entries=2)
        backend.put(("k1",), "v1")
        backend.put(("k2",), "v2")
        # Make the LRU order unambiguous on coarse filesystem clocks.
        os.utime(backend._entry_path(("k1",)), (1, 1))
        backend.put(("k3",), "v3")
        assert len(backend) == 2
        assert backend.get(("k1",)) is None
        assert backend.get(("k2",)) == "v2"
        assert backend.get(("k3",)) == "v3"

    def test_zero_entries_disables_the_backend(self, tmp_path):
        backend = DiskCacheBackend(tmp_path, max_entries=0)
        assert not backend.enabled
        engine = Engine(cache=backend)
        assert not engine.cache_enabled

    def test_clear_resets_epoch_and_keeps_lifetime(self, tmp_path):
        backend = DiskCacheBackend(tmp_path)
        backend.put(("k",), "v")
        assert backend.get(("k",)) == "v"
        assert backend.get(("gone",)) is None
        backend.clear()
        assert len(backend) == 0
        assert backend.stats.hits == 0 and backend.stats.misses == 0
        assert backend.lifetime_stats.hits == 1
        assert backend.lifetime_stats.misses == 1

    def test_unpicklable_values_stay_uncached(self, tmp_path):
        backend = DiskCacheBackend(tmp_path)
        backend.put(("k",), lambda: None)  # silently skipped
        assert len(backend) == 0

    def test_clear_sweeps_orphaned_temp_files(self, tmp_path):
        backend = DiskCacheBackend(tmp_path)
        backend.put(("k",), "v")
        # A writer that died between mkstemp and os.replace leaves this.
        (tmp_path / "orphanxyz.tmp").write_bytes(b"partial")
        backend.clear()
        assert list(tmp_path.iterdir()) == []

    def test_is_a_cache_backend(self, tmp_path):
        assert isinstance(DiskCacheBackend(tmp_path), CacheBackend)
        assert isinstance(MemoryCacheBackend(4), CacheBackend)


class TestEngineIntegration:
    def test_cross_engine_hit_within_one_process(self, tmp_path, db):
        spec = f"disk:{tmp_path / 'cache'}"
        with Engine(cache=spec) as first:
            miss = first.evaluate(QUERY, db, strategy="naive")
            assert not miss.from_cache
        with Engine(cache=spec) as second:
            hit = second.evaluate(QUERY, db, strategy="naive")
            assert hit.from_cache
            assert hit.relation.rows_bag() == miss.relation.rows_bag()
            assert second.cache_stats.hits == 1

    def test_session_accepts_cache_spec_and_auto_shares_entries(self, tmp_path, db):
        spec = f"disk:{tmp_path / 'cache'}"
        with Session(db, cache=spec) as session:
            session.naive(QUERY)
        with Session(db, cache=spec) as session:
            hit = session.auto(QUERY)
            assert hit.from_cache
            assert hit.metadata["plan"]["strategy"] == "naive"

    def test_database_mutation_misses_by_fingerprint(self, tmp_path, db):
        spec = f"disk:{tmp_path / 'cache'}"
        with Engine(cache=spec) as engine:
            engine.evaluate(QUERY, db, strategy="naive")
            mutated = db.with_relation(
                "R", db["R"].add_rows([(9, 3)])
            )
            again = engine.evaluate(QUERY, mutated, strategy="naive")
            assert not again.from_cache

    def test_sharded_partials_persist_across_engines(self, tmp_path, db):
        spec = f"disk:{tmp_path / 'cache'}"
        sharded = ShardedDatabase.from_database(db, 2)
        with Engine(cache=spec) as first:
            cold = first.evaluate(QUERY, sharded, strategy="naive")
            assert cold.metadata["sharding"]["mode"] == "distributed"
            assert cold.metadata["sharding"]["partial_cache_hits"] == 0
        with Engine(cache=spec) as second:
            warm = second.evaluate(QUERY, sharded, strategy="naive")
            assert warm.metadata["sharding"]["partial_cache_hits"] == 2
            assert warm.relation.rows_bag() == cold.relation.rows_bag()


_SUBPROCESS_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro import Database, Engine, Null
    from repro.algebra import builder as rb
    from repro.algebra.conditions import Attr, Eq, Literal

    db = Database.from_dict(
        {
            "R": (("a", "b"), [(1, 2), (Null("x"), 3)]),
            "S": (("c",), [(2,), (3,)]),
        }
    )
    query = rb.select(rb.relation("R"), Eq(Attr("b"), Literal(3)))
    with Engine(cache="disk:" + sys.argv[1]) as engine:
        result = engine.evaluate(query, db, strategy="naive")
        print("from_cache=" + str(result.from_cache))
        print("rows=" + repr(sorted(result.relation.rows_set(), key=str)))
    """
)


def test_cross_process_hit(tmp_path):
    """A fresh *process* on the same directory gets a cache hit."""
    cache_dir = str(tmp_path / "cache")
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    def run() -> dict:
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT, cache_dir],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        lines = dict(
            line.split("=", 1) for line in proc.stdout.strip().splitlines()
        )
        return lines

    first = run()
    second = run()
    assert first["from_cache"] == "False"
    assert second["from_cache"] == "True"
    assert first["rows"] == second["rows"]
