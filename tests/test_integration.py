"""End-to-end integration tests spanning multiple subsystems.

Each test follows one of the paper's narratives across module boundaries:
SQL text → SQL answers vs certain answers vs sound approximations; naïve
evaluation vs homomorphism classes; bag bounds vs set certainty; the full
Figure 1 pipeline; and a cross-check of all approximation procedures on
randomly generated databases (hypothesis).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import builder as rb, evaluate
from repro.approx import (
    compare_answers,
    translate_guagliardo16,
    translate_libkin16,
)
from repro.ctables import STRATEGIES, run_strategy
from repro.datamodel import Database, Null, Relation
from repro.incomplete import certain_answers_with_nulls, naive_evaluate_direct
from repro.probabilistic import almost_certainly_true_answers
from repro.sql import run_sql
from repro.workloads import (
    CUSTOMERS_WITHOUT_PAID_ORDER_SQL,
    UNPAID_ORDERS_SQL,
    customers_without_paid_order_algebra,
    figure1_database,
    figure1_database_with_null,
    inject_nulls,
    unpaid_orders_algebra,
)


class TestFigure1EndToEnd:
    """The complete Section 1 story on the Figure 1 database."""

    def test_sql_vs_certainty_vs_approximation(self):
        complete = figure1_database()
        incomplete = figure1_database_with_null()
        schema = incomplete.schema()

        # Unpaid orders: SQL flips from {o3} to ∅ (false negative); the
        # certain answers are ∅, and Q+ agrees — it never overshoots.
        assert run_sql(complete, UNPAID_ORDERS_SQL).rows_set() == {("o3",)}
        assert run_sql(incomplete, UNPAID_ORDERS_SQL).rows_set() == set()
        unpaid = unpaid_orders_algebra()
        truth_unpaid = certain_answers_with_nulls(unpaid, incomplete)
        plus_unpaid = evaluate(translate_guagliardo16(unpaid, schema).certain, incomplete)
        assert truth_unpaid.rows_set() == set()
        assert plus_unpaid.rows_set() == set()

        # Customers without a paid order: SQL invents c2 (false positive);
        # the sound procedures never report it.
        assert run_sql(incomplete, CUSTOMERS_WITHOUT_PAID_ORDER_SQL).rows_set() == {("c2",)}
        unpaid_customers = customers_without_paid_order_algebra()
        truth_cust = certain_answers_with_nulls(unpaid_customers, incomplete)
        plus_cust = evaluate(
            translate_guagliardo16(unpaid_customers, schema).certain, incomplete
        )
        assert ("c2",) not in truth_cust.rows_set()
        assert ("c2",) not in plus_cust.rows_set()
        quality = compare_answers(plus_cust, truth_cust)
        assert quality.is_sound()

    def test_false_positive_is_almost_certain_but_not_certain(self):
        """c2 illustrates the gap between the two guarantees (Sections 1 and 4.3):
        it is *not* a certain answer, yet it is almost certainly true — the
        probabilistic guarantee is strictly weaker than certainty."""
        incomplete = figure1_database_with_null()
        query = customers_without_paid_order_algebra()
        almost_true = almost_certainly_true_answers(query, incomplete).rows_set()
        certain = certain_answers_with_nulls(query, incomplete).rows_set()
        assert ("c2",) in almost_true
        assert ("c2",) not in certain


def _small_incomplete_db(values, null_slots):
    """Build a 2-relation database from hypothesis-drawn data."""
    nulls = [Null(f"i{i}") for i in range(3)]
    r_rows, s_rows = [], []
    for index, value in enumerate(values):
        row = (nulls[index % 3],) if (index in null_slots) else (f"v{value}",)
        (r_rows if index % 2 == 0 else s_rows).append(row)
    return Database(
        {"R": Relation(("A",), r_rows), "S": Relation(("A",), s_rows)}
    )


class TestCrossProcedureAgreement:
    """All sound procedures stay within exact certain answers on random inputs."""

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.integers(0, 3), min_size=1, max_size=6),
        null_slots=st.sets(st.integers(0, 5), max_size=3),
    )
    def test_all_procedures_sound_on_difference_query(self, values, null_slots):
        db = _small_incomplete_db(values, null_slots)
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        schema = db.schema()
        truth = certain_answers_with_nulls(query, db).rows_set()

        plus = evaluate(translate_guagliardo16(query, schema).certain, db).rows_set()
        qt = evaluate(translate_libkin16(query, schema).certainly_true, db).rows_set()
        assert plus <= truth
        assert qt <= truth
        for strategy in STRATEGIES:
            assert run_strategy(strategy, query, db).certain.rows_set() <= truth

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.integers(0, 3), min_size=1, max_size=6),
        null_slots=st.sets(st.integers(0, 5), max_size=3),
    )
    def test_naive_equals_certain_for_ucq(self, values, null_slots):
        db = _small_incomplete_db(values, null_slots)
        query = rb.union(rb.relation("R"), rb.relation("S"))
        naive = naive_evaluate_direct(query, db).rows_set()
        certain = certain_answers_with_nulls(query, db).rows_set()
        assert naive == certain

    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(st.integers(0, 2), min_size=1, max_size=5),
        null_slots=st.sets(st.integers(0, 4), max_size=2),
    )
    def test_qplus_exact_when_database_complete(self, values, null_slots):
        db = _small_incomplete_db(values, set())
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        pair = translate_guagliardo16(query, db.schema())
        assert evaluate(pair.certain, db).rows_set() == evaluate(query, db).rows_set()


class TestNullInjectionPipeline:
    def test_recall_degrades_with_null_rate_but_precision_stays_perfect(self):
        base = figure1_database()
        query = rb.project(rb.relation("Payments"), ["cid"])
        previous_recall = 1.0
        for rate in (0.0, 0.4, 0.8):
            db = inject_nulls(base, null_rate=rate, seed=11, protected_relations=("Orders", "Customers"))
            pair = translate_guagliardo16(query, db.schema())
            produced = evaluate(pair.certain, db)
            truth = certain_answers_with_nulls(query, db)
            quality = compare_answers(produced, truth)
            assert quality.is_sound()
            previous_recall = quality.recall
        assert 0.0 <= previous_recall <= 1.0
