"""End-to-end tests of the multi-tenant evaluation service.

Everything here exercises the real wire path: an
:class:`~repro.server.EvalServer` bound to an ephemeral port, talked to
through :class:`~repro.server.ServerClient` over HTTP — admission
control, tenant cache isolation, streaming batches, cancellation (the
"cancelled request never lands in the cache" guarantee), per-request
metrics, and leak-free shutdown.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.datamodel.database import Database
from repro.datamodel.relation import Relation
from repro.engine.registry import (
    EvaluationStrategy,
    StrategyCapabilities,
    StrategyOutcome,
    register_strategy,
    unregister_strategy,
)
from repro.server import (
    EvalServer,
    ServerBusyError,
    ServerClient,
    ServerConfig,
    ServerRequestError,
)


@pytest.fixture
def toy_db() -> Database:
    return Database.from_dict(
        {"R": (("a", "b"), [(1, 10), (2, 20), (3, 30)])}
    )


@pytest.fixture
def server(toy_db):
    with EvalServer(
        ServerConfig(pool="thread", max_workers=2, datasets={"toy": toy_db})
    ) as srv:
        yield srv


@pytest.fixture
def client(server):
    host, port = server.address
    with ServerClient(host, port, tenant="alice") as c:
        yield c


@pytest.fixture
def sleep_strategy():
    """A registered strategy that sleeps ``delay`` seconds, then answers."""

    @register_strategy("test-server-sleep")
    class _SleepStrategy(EvaluationStrategy):
        capabilities = StrategyCapabilities(semantics=("set",))

        def run(self, query, database, *, semantics, **options):
            time.sleep(float(options.get("delay", 1.0)))
            return StrategyOutcome(answer=Relation(("a",), [(1,)]))

    yield "test-server-sleep"
    unregister_strategy("test-server-sleep")


# ----------------------------------------------------------------------
# Basic round trips
# ----------------------------------------------------------------------
def test_health_strategies_and_unknown_path(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert isinstance(health["breakers"], dict)
    assert "naive" in client.strategies()
    listing = client._request("GET", "/strategies")
    assert listing["default_backend"] == "auto"
    assert listing["backends"]["naive"] == ["interpreter", "sqlite"]
    assert listing["backends"]["approx-libkin16"] == ["interpreter"]
    with pytest.raises(ServerRequestError) as excinfo:
        client._request("GET", "/nope")
    assert excinfo.value.status == 404


def test_per_request_backend_override(client):
    for backend in ("sqlite", "interpreter"):
        answer = client.query(
            "SELECT a FROM R",
            db="toy",
            strategy="naive",
            use_cache=False,
            backend=backend,
        )
        assert answer["result"]["rows"] == [[1], [2], [3]]
        note = answer["result"]["metadata"]["backend"]
        assert note["requested"] == backend and note["resolved"] == backend


def test_query_roundtrip_and_cache_hit(client):
    first = client.query("SELECT a FROM R", db="toy")
    assert first["result"]["rows"] == [[1], [2], [3]]
    assert first["result"]["from_cache"] is False
    assert first["queue_wait"] >= 0.0 and first["execution"] > 0.0
    second = client.query("SELECT a FROM R", db="toy")
    assert second["result"]["from_cache"] is True


def test_auto_strategy_reports_plan(client):
    answer = client.query("SELECT a FROM R", db="toy", strategy="auto")
    plan = answer["result"]["metadata"]["plan"]
    assert plan["strategy"] in client.strategies()
    assert plan["reason"]


def test_unknown_dataset_and_bad_sql_are_client_errors(client):
    with pytest.raises(ServerRequestError) as excinfo:
        client.query("SELECT a FROM R", db="nope")
    assert excinfo.value.status == 400
    assert "nope" in excinfo.value.message
    with pytest.raises(ServerRequestError) as excinfo:
        client.query("NOT EVEN SQL", db="toy")
    assert excinfo.value.status == 400


# ----------------------------------------------------------------------
# Tenants
# ----------------------------------------------------------------------
def test_tenant_caches_are_isolated(server, client):
    host, port = server.address
    warmed = client.query("SELECT b FROM R", db="toy")
    assert warmed["result"]["from_cache"] is False
    with ServerClient(host, port, tenant="bob") as bob:
        cold = bob.query("SELECT b FROM R", db="toy")
        assert cold["result"]["from_cache"] is False  # no cross-tenant hits
        assert cold["result"]["rows"] == warmed["result"]["rows"]
    again = client.query("SELECT b FROM R", db="toy")
    assert again["result"]["from_cache"] is True


def test_uploaded_datasets_are_tenant_private(server, client):
    host, port = server.address
    mine = Database.from_dict({"S": (("x",), [(7,), (8,)])})
    fingerprint = client.register_dataset("mine", mine)
    assert fingerprint
    assert "mine" in client.datasets()["datasets"]
    answer = client.query("SELECT x FROM S", db="mine")
    assert answer["result"]["rows"] == [[7], [8]]
    with ServerClient(host, port, tenant="bob") as bob:
        assert "mine" not in bob.datasets()["datasets"]
        with pytest.raises(ServerRequestError) as excinfo:
            bob.query("SELECT x FROM S", db="mine")
        assert excinfo.value.status == 400


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_admission_rejects_above_capacity(toy_db, sleep_strategy):
    with EvalServer(
        ServerConfig(
            pool="thread",
            max_workers=1,
            max_concurrency=1,
            queue_limit=0,
            datasets={"toy": toy_db},
        )
    ) as srv:
        host, port = srv.address
        slow = ServerClient(host, port, tenant="alice")
        fast = ServerClient(host, port, tenant="alice")
        done = threading.Event()

        def occupy():
            try:
                slow.query(
                    "SELECT a FROM R", db="toy", strategy=sleep_strategy,
                    delay=3.0, use_cache=False,
                )
            except ServerRequestError:
                pass
            finally:
                done.set()

        thread = threading.Thread(target=occupy)
        thread.start()
        try:
            deadline = time.monotonic() + 5
            while srv._admission.in_flight == 0:
                assert time.monotonic() < deadline, "first request never admitted"
                time.sleep(0.01)
            with pytest.raises(ServerBusyError) as excinfo:
                fast.query("SELECT a FROM R", db="toy")
            assert excinfo.value.status == 429
            stats = fast.stats()
            assert stats["admission"]["rejected"] >= 1
            assert stats["requests"].get("rejected", 0) >= 1
        finally:
            thread.join(timeout=10)
            slow.close()
            fast.close()
        assert done.is_set()


# ----------------------------------------------------------------------
# Streaming batches
# ----------------------------------------------------------------------
def test_batch_streams_results_with_summary(client):
    items = list(
        client.batch(
            ["SELECT a FROM R", "SELECT b FROM R", "SELECT zzz FROM R"],
            db="toy",
        )
    )
    summary = items[-1]
    assert summary["done"] is True
    assert summary["completed"] == 2 and summary["errors"] == 1
    by_index = {item["index"]: item for item in items[:-1]}
    assert by_index[0]["result"]["rows"] == [[1], [2], [3]]
    assert by_index[1]["result"]["rows"] == [[10], [20], [30]]
    assert "error" in by_index[2]


def test_batch_streams_in_completion_order(toy_db, sleep_strategy):
    with EvalServer(
        ServerConfig(
            pool="thread",
            max_workers=2,
            max_concurrency=4,
            datasets={"toy": toy_db},
        )
    ) as srv:
        host, port = srv.address
        with ServerClient(host, port, tenant="alice") as c:
            items = list(
                c.batch(
                    [
                        {"query": "SELECT a FROM R", "options": {"delay": 0.8}},
                        {"query": "SELECT b FROM R", "options": {"delay": 0.05}},
                    ],
                    db="toy",
                    strategy=sleep_strategy,
                    use_cache=False,
                )
            )
        order = [item["index"] for item in items if "index" in item]
        # The fast query (index 1) must arrive before the slow one: the
        # stream is completion-ordered, not input-ordered.
        assert order == [1, 0]


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
def test_cancel_rpc_returns_409_and_skips_cache(toy_db, sleep_strategy):
    with EvalServer(
        ServerConfig(pool="thread", max_workers=2, datasets={"toy": toy_db})
    ) as srv:
        host, port = srv.address
        blocked = ServerClient(host, port, tenant="alice")
        control = ServerClient(host, port, tenant="alice")
        outcome = {}

        def issue():
            try:
                outcome["response"] = blocked.query(
                    "SELECT a FROM R", db="toy", strategy=sleep_strategy,
                    request_id="victim", delay=5.0,
                )
            except ServerRequestError as exc:
                outcome["status"] = exc.status

        thread = threading.Thread(target=issue)
        thread.start()
        try:
            deadline = time.monotonic() + 5
            while ("alice", "victim") not in srv._inflight:
                assert time.monotonic() < deadline, "request never registered"
                time.sleep(0.01)
            time.sleep(0.2)  # let the evaluation reach the worker
            assert control.cancel("victim") is True
            thread.join(timeout=10)
            assert outcome.get("status") == 409
            # THE guarantee: the cancelled result never entered alice's
            # cache — an identical query recomputes (and takes its time).
            start = time.perf_counter()
            rerun = control.query(
                "SELECT a FROM R", db="toy", strategy=sleep_strategy, delay=0.3
            )
            elapsed = time.perf_counter() - start
            assert rerun["result"]["from_cache"] is False
            assert elapsed >= 0.3
            assert control.stats()["requests"].get("cancelled", 0) >= 1
        finally:
            thread.join(timeout=10)
            blocked.close()
            control.close()


def test_cancel_unknown_id_is_a_noop(client):
    assert client.cancel("never-issued") is False


def test_cancel_reaches_worker_process(toy_db, sleep_strategy):
    """With the process pool, cancel terminates the worker mid-task."""
    with EvalServer(
        ServerConfig(
            pool="process", max_workers=1, datasets={"toy": toy_db}
        )
    ) as srv:
        host, port = srv.address
        blocked = ServerClient(host, port, tenant="alice")
        control = ServerClient(host, port, tenant="alice")
        outcome = {}

        def issue():
            try:
                blocked.query(
                    "SELECT a FROM R", db="toy", strategy=sleep_strategy,
                    request_id="victim", delay=30.0,
                )
            except ServerRequestError as exc:
                outcome["status"] = exc.status

        thread = threading.Thread(target=issue)
        thread.start()
        try:
            deadline = time.monotonic() + 10
            while not srv._pool.worker_pids():
                assert time.monotonic() < deadline, "worker never spawned"
                time.sleep(0.02)
            time.sleep(0.3)
            before = srv._pool.worker_pids()
            start = time.monotonic()
            assert control.cancel("victim") is True
            thread.join(timeout=10)
            assert outcome.get("status") == 409
            assert time.monotonic() - start < 20  # did not wait out the sleep
            # The replaced worker serves the next request promptly.
            answer = control.query("SELECT a FROM R", db="toy", strategy="naive")
            assert answer["result"]["rows"] == [[1], [2], [3]]
            assert srv._pool.worker_pids() != before
        finally:
            thread.join(timeout=10)
            blocked.close()
            control.close()
    assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
# Metrics and shutdown
# ----------------------------------------------------------------------
def test_stats_reports_latency_cache_and_admission(client):
    client.query("SELECT a FROM R", db="toy")
    client.query("SELECT a FROM R", db="toy")
    stats = client.stats()
    assert stats["completed"] >= 2
    assert stats["qps"] > 0.0
    assert stats["cache"]["hits"] >= 1
    assert 0.0 < stats["cache"]["hit_rate"] <= 1.0
    for section in ("latency", "queue_wait", "execution"):
        summary = stats[section]
        assert summary["count"] >= 2
        assert summary["p50"] <= summary["p99"] <= summary["max"] + 1e-9
    assert stats["admission"]["capacity"] > 0
    assert stats["tenants"].get("alice", 0) >= 2
    assert stats["strategies"].get("naive", 0) >= 1
    assert stats["tenant_caches"]["alice"]["hits"] >= 1


def test_shutdown_is_clean_and_leakfree(toy_db):
    server = EvalServer(
        ServerConfig(pool="process", max_workers=1, datasets={"toy": toy_db})
    ).start()
    host, port = server.address
    with ServerClient(host, port, tenant="alice") as c:
        assert c.query("SELECT a FROM R", db="toy")["result"]["rows"]
    server.close()
    assert multiprocessing.active_children() == []
    with pytest.raises(OSError):
        with ServerClient(host, port) as c:
            c.healthz()
    server.close()  # idempotent
