"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datamodel import Database, Null, Relation
from repro.workloads import figure1_database, figure1_database_with_null


@pytest.fixture
def null_x() -> Null:
    return Null("x")


@pytest.fixture
def null_y() -> Null:
    return Null("y")


@pytest.fixture
def rs_database(null_x) -> Database:
    """The paper's running example: R = {1}, S = {⊥}."""
    return Database.from_dict(
        {"R": (("A",), [(1,)]), "S": (("A",), [(null_x,)])}
    )


@pytest.fixture
def figure1() -> Database:
    return figure1_database()


@pytest.fixture
def figure1_null() -> Database:
    return figure1_database_with_null()


@pytest.fixture
def graph_database(null_x) -> Database:
    """A two-edge graph 1 → ⊥ → 2 used in the naïve-evaluation examples."""
    return Database.from_dict({"E": (("src", "dst"), [(1, null_x), (null_x, 2)])})
