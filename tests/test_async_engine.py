"""Unit tests of :mod:`repro.engine.aio`: AsyncEngine and AsyncSession.

The async-vs-sync *result* equivalence lives in
``tests/test_async_equivalence.py``; this module checks the async
machinery itself — genuine concurrency of ``compare``/``evaluate_batch``
fan-out, the ``max_concurrency`` semaphore, single-flight coalescing of
identical in-flight evaluations, cache sharing with the sync twin, error
propagation out of workers, and engine/session lifecycle.

Custom strategies registered here run on the ``thread`` pool (they only
exist in this process); the process pool is exercised with the built-in
strategies in the equivalence harness and in E14.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import AsyncEngine, AsyncSession, Database, Engine, Relation, Session
from repro.engine import (
    EngineError,
    EvaluationStrategy,
    StrategyCapabilities,
    StrategyNotApplicableError,
    StrategyOutcome,
    register_strategy,
    unregister_strategy,
)
from repro.sharding import ShardedDatabase


@pytest.fixture
def tiny_db() -> Database:
    return Database.from_dict({"R": (("a",), [(1,), (2,)])})


def _answer() -> StrategyOutcome:
    return StrategyOutcome(answer=Relation(("a",), [(1,)]))


# ----------------------------------------------------------------------
# Basic contract
# ----------------------------------------------------------------------
def test_async_evaluate_matches_sync(tiny_db):
    async def main():
        async with AsyncEngine(pool="serial") as engine:
            result = await engine.evaluate(
                "SELECT a FROM R", tiny_db, strategy="naive"
            )
            return result

    result = asyncio.run(main())
    with Engine() as sync_engine:
        expected = sync_engine.evaluate(
            "SELECT a FROM R", tiny_db, strategy="naive"
        )
    assert result.same_answers_as(expected)
    assert result.strategy == "naive"
    assert not result.from_cache


def test_async_engine_rejects_bad_configuration():
    with pytest.raises(EngineError, match="worker pool"):
        AsyncEngine(pool="quantum")
    with pytest.raises(EngineError, match="max_concurrency"):
        AsyncEngine(max_concurrency=0)


def test_unsupported_semantics_raises_before_dispatch(tiny_db):
    async def main():
        async with AsyncEngine(pool="serial") as engine:
            with pytest.raises(StrategyNotApplicableError):
                await engine.evaluate(
                    "SELECT a FROM R", tiny_db,
                    strategy="exact-certain", semantics="bag",
                )
            with pytest.raises(EngineError, match="unknown semantics"):
                await engine.evaluate(
                    "SELECT a FROM R", tiny_db, semantics="fuzzy"
                )

    asyncio.run(main())


def test_evaluate_batch_preserves_input_order(tiny_db):
    queries = [f"SELECT a FROM R WHERE a = {i}" for i in (2, 1, 2, 1)]

    async def main():
        async with AsyncEngine(pool="thread", max_workers=4) as engine:
            return await engine.evaluate_batch(queries, tiny_db, strategy="naive")

    results = asyncio.run(main())
    assert [sorted(r.rows_set()) for r in results] == [
        [(2,)], [(1,)], [(2,)], [(1,)]
    ]


# ----------------------------------------------------------------------
# Genuine concurrency
# ----------------------------------------------------------------------
def test_compare_runs_strategies_concurrently(tiny_db):
    # Both strategies block on one barrier: the comparison only finishes
    # if their runs are in flight at the same time (serial execution
    # would deadlock until the barrier timeout).
    barrier = threading.Barrier(2, timeout=10)

    for name in ("test-conc-a", "test-conc-b"):

        @register_strategy(name)
        class _BarrierStrategy(EvaluationStrategy):
            capabilities = StrategyCapabilities(semantics=("set",))

            def run(self, query, database, *, semantics, **options):
                barrier.wait()
                return _answer()

    try:

        async def main():
            async with AsyncEngine(pool="thread", max_workers=2) as engine:
                return await engine.compare(
                    "SELECT a FROM R",
                    tiny_db,
                    strategies=("test-conc-a", "test-conc-b"),
                )

        results = asyncio.run(main())
        assert set(results) == {"test-conc-a", "test-conc-b"}
    finally:
        unregister_strategy("test-conc-a")
        unregister_strategy("test-conc-b")


def test_max_concurrency_bounds_in_flight_dispatches(tiny_db):
    in_flight = 0
    high_water = 0
    lock = threading.Lock()

    @register_strategy("test-gauge")
    class _GaugeStrategy(EvaluationStrategy):
        capabilities = StrategyCapabilities(semantics=("set",))

        def run(self, query, database, *, semantics, **options):
            nonlocal in_flight, high_water
            with lock:
                in_flight += 1
                high_water = max(high_water, in_flight)
            time.sleep(0.05)
            with lock:
                in_flight -= 1
            return _answer()

    try:
        queries = [f"SELECT a FROM R WHERE a = {i}" for i in range(6)]

        async def main():
            async with AsyncEngine(
                pool="thread", max_workers=6, max_concurrency=2
            ) as engine:
                await engine.evaluate_batch(
                    queries, tiny_db, strategy="test-gauge", use_cache=False
                )

        asyncio.run(main())
        assert high_water <= 2, f"semaphore leaked: {high_water} in flight"
        assert high_water >= 1
    finally:
        unregister_strategy("test-gauge")


# ----------------------------------------------------------------------
# Single-flight and cache sharing
# ----------------------------------------------------------------------
def test_identical_inflight_evaluations_coalesce(tiny_db):
    calls = []

    @register_strategy("test-slow")
    class _SlowStrategy(EvaluationStrategy):
        capabilities = StrategyCapabilities(semantics=("set",))

        def run(self, query, database, *, semantics, **options):
            calls.append(1)
            time.sleep(0.1)
            return _answer()

    try:

        async def main():
            async with AsyncEngine(pool="thread", max_workers=4) as engine:
                return await asyncio.gather(
                    *(
                        engine.evaluate(
                            "SELECT a FROM R", tiny_db, strategy="test-slow"
                        )
                        for _ in range(4)
                    )
                )

        results = asyncio.run(main())
        assert len(calls) == 1, "identical in-flight evaluations must coalesce"
        assert sum(not r.from_cache for r in results) == 1
        assert sum(r.from_cache for r in results) == 3
        for r in results:
            assert r.rows_set() == {(1,)}
    finally:
        unregister_strategy("test-slow")


def test_async_and_sync_twins_share_one_cache(tiny_db):
    with Engine() as sync_engine:
        warm = sync_engine.evaluate("SELECT a FROM R", tiny_db, strategy="naive")
        assert not warm.from_cache

        async def main():
            async with AsyncEngine(engine=sync_engine, pool="serial") as aeng:
                return await aeng.evaluate(
                    "SELECT a FROM R", tiny_db, strategy="naive"
                )

        result = asyncio.run(main())
        assert result.from_cache, "the async twin must hit the sync twin's cache"
        # ... and the other direction.
        sync_engine.clear_cache()

        async def refill():
            async with AsyncEngine(engine=sync_engine, pool="serial") as aeng:
                await aeng.evaluate("SELECT a FROM R", tiny_db, strategy="naive")

        asyncio.run(refill())
        again = sync_engine.evaluate("SELECT a FROM R", tiny_db, strategy="naive")
        assert again.from_cache


# ----------------------------------------------------------------------
# Error propagation
# ----------------------------------------------------------------------
def test_worker_errors_propagate(tiny_db):
    async def main():
        async with AsyncEngine(pool="thread") as engine:
            # naive rejects unknown options inside the worker.
            with pytest.raises(EngineError, match="does not understand"):
                await engine.evaluate(
                    "SELECT a FROM R", tiny_db, strategy="naive",
                    use_cache=False, bogus=1,
                )

    asyncio.run(main())


def test_compare_skip_inapplicable(tiny_db):
    # An algebra query has no SQL AST, so sql-3vl is inapplicable.
    from repro import builder as rb

    query = rb.relation("R")

    async def main():
        async with AsyncEngine(pool="thread") as engine:
            results = await engine.compare(query, tiny_db)
            assert "sql-3vl" not in results
            assert "naive" in results
            with pytest.raises(StrategyNotApplicableError):
                await engine.compare(
                    query, tiny_db,
                    strategies=("sql-3vl",), skip_inapplicable=False,
                )

    asyncio.run(main())


# ----------------------------------------------------------------------
# Sharding through the async path
# ----------------------------------------------------------------------
def test_async_sharded_evaluation_is_distributed_and_correct(tiny_db):
    db = Database.from_dict(
        {"R": (("a", "b"), [(i, i % 3) for i in range(12)])}
    )
    from repro import builder as rb

    query = rb.select(rb.relation("R"), rb.eq("b", 1))
    sharded = ShardedDatabase.from_database(db, 3)

    async def main():
        async with AsyncEngine(pool="serial") as engine:
            return await engine.evaluate(
                query, sharded, strategy="naive", executor="thread"
            )

    result = asyncio.run(main())
    assert result.metadata["sharding"]["mode"] == "distributed"
    with Engine() as sync_engine:
        expected = sync_engine.evaluate(query, db, strategy="naive")
    assert result.same_answers_as(expected)


def test_async_sharded_partial_cache_invalidation():
    db = Database.from_dict(
        {"R": (("a", "b"), [(i, i % 3) for i in range(12)])}
    )
    from repro import builder as rb

    query = rb.select(rb.relation("R"), rb.eq("b", 1))
    sharded = ShardedDatabase.from_database(db, 4)

    async def main():
        async with AsyncEngine(pool="serial") as engine:
            warm = await engine.evaluate(query, sharded, strategy="naive")
            assert warm.metadata["sharding"]["partial_cache_hits"] == 0
            mutated = sharded.add_rows("R", [(99, 1)])
            fresh = await engine.evaluate(query, mutated, strategy="naive")
            return fresh

    fresh = asyncio.run(main())
    assert fresh.metadata["sharding"]["partial_cache_hits"] == 3
    assert (99, 1) in fresh.rows_set()


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class _RecordingExecutor:
    kind = "recording"

    def __init__(self):
        self.closed = False

    def run(self, tasks):  # pragma: no cover - never exercised here
        return []

    def close(self):
        self.closed = True


def test_async_engine_closes_owned_engine_and_pool(tiny_db):
    recording = _RecordingExecutor()

    async def main():
        engine = AsyncEngine(pool="thread")
        engine.engine._executors["fake"] = recording
        await engine.evaluate("SELECT a FROM R", tiny_db, strategy="naive")
        await engine.aclose()
        return engine

    engine = asyncio.run(main())
    assert recording.closed
    assert engine._pool is None


def test_async_engine_never_closes_a_shared_sync_engine(tiny_db):
    recording = _RecordingExecutor()
    with Engine() as sync_engine:
        sync_engine._executors["fake"] = recording

        async def main():
            async with AsyncEngine(engine=sync_engine, pool="serial") as aeng:
                await aeng.evaluate("SELECT a FROM R", tiny_db, strategy="naive")

        asyncio.run(main())
        assert not recording.closed, "a shared sync engine must survive aclose"
    assert recording.closed


def test_async_session_lifecycle_and_shared_engine(tiny_db):
    async def main():
        engine = AsyncEngine(pool="serial")
        async with AsyncSession(tiny_db, engine=engine) as session:
            result = await session.naive("SELECT a FROM R")
            assert result.rows_set() == {(1,), (2,)}
        # The shared engine survives session exit and keeps working.
        after = await engine.evaluate("SELECT a FROM R", tiny_db)
        assert after.from_cache, "session results must land in the shared cache"
        await engine.aclose()

        # An owned engine is closed by session exit.
        recording = _RecordingExecutor()
        async with AsyncSession(tiny_db, pool="serial") as owned:
            owned.engine.engine._executors["fake"] = recording
        assert recording.closed

    asyncio.run(main())


def test_async_session_with_database_shares_engine(tiny_db):
    other = Database.from_dict({"R": (("a",), [(7,)])})

    async def main():
        async with AsyncSession(tiny_db, pool="serial") as session:
            child = session.with_database(other)
            result = await child.naive("SELECT a FROM R")
            assert result.rows_set() == {(7,)}
            assert child.engine is session.engine

    asyncio.run(main())


def test_async_engine_survives_successive_event_loops(tiny_db):
    engine = AsyncEngine(pool="thread", max_concurrency=2)

    async def one_loop():
        return await engine.evaluate("SELECT a FROM R", tiny_db, strategy="naive")

    first = asyncio.run(one_loop())
    second = asyncio.run(one_loop())
    assert not first.from_cache
    assert second.from_cache
    engine.close()
