"""Tests for the FO calculus: evaluation, fragments, conjunctive queries."""

from __future__ import annotations

import pytest

from repro.calculus import (
    Atom,
    ConjunctiveQuery,
    CqConst,
    EqAtom,
    Exists,
    FoQuery,
    Forall,
    Implies,
    Not,
    Or,
    RelAtom,
    UnionOfConjunctiveQueries,
    Var,
    classify,
    constants_mentioned,
    free_variables,
    holds,
    is_conjunctive,
    is_pos_forall_g,
    is_positive,
    is_ucq,
    naive_evaluation_is_exact,
)
from repro.calculus import ast as fo
from repro.algebra import evaluate
from repro.datamodel import Database


class TestFormulaBasics:
    def test_free_variables(self):
        formula = Exists(["y"], fo.And(RelAtom("R", ["x", "y"]), EqAtom("x", "z")))
        assert free_variables(formula) == {Var("x"), Var("z")}

    def test_constants_mentioned(self):
        formula = fo.And(RelAtom("R", ["x", 3]), EqAtom("x", "a_var"))
        assert constants_mentioned(formula) == {3}

    def test_str_rendering(self):
        formula = Forall(["x"], Implies(RelAtom("R", ["x"]), RelAtom("S", ["x"])))
        rendered = str(formula)
        assert "∀" in rendered and "→" in rendered


class TestEvaluation:
    def test_boolean_query_on_graph(self, graph_database):
        # ∃x E(1, x) ∧ E(x, 2): the path query of Section 4.1.
        formula = Exists(
            ["x"], fo.And(RelAtom("E", [fo.ConstTerm(1), "x"]), RelAtom("E", ["x", fo.ConstTerm(2)]))
        )
        assert holds(formula, graph_database)

    def test_universal_quantifier(self):
        db = Database.from_dict({"R": (("A",), [(1,), (2,)]), "S": (("A",), [(1,), (2,)])})
        formula = Forall(["x"], Implies(RelAtom("R", ["x"]), RelAtom("S", ["x"])))
        assert holds(formula, db)
        smaller = Database.from_dict({"R": (("A",), [(1,), (2,)]), "S": (("A",), [(1,)])})
        assert not holds(formula, smaller)

    def test_fo_query_answers(self, graph_database):
        query = FoQuery(Exists(["y"], RelAtom("E", ["x", "y"])), free=["x"])
        answers = query.answers(graph_database)
        assert (1,) in answers.rows_set()

    def test_unsafe_head_rejected(self):
        with pytest.raises(ValueError):
            FoQuery(RelAtom("R", ["x"]), free=[])

    def test_boolean_requires_arity_zero(self, graph_database):
        query = FoQuery(RelAtom("E", ["x", "y"]), free=["x", "y"])
        with pytest.raises(ValueError):
            query.boolean(graph_database)


class TestFragments:
    def test_cq_and_ucq(self):
        cq = Exists(["x"], fo.And(RelAtom("R", ["x"]), RelAtom("S", ["x"])))
        ucq = Or(cq, RelAtom("S", ["y"]))
        assert is_conjunctive(cq) and is_ucq(cq)
        assert not is_conjunctive(ucq) and is_ucq(ucq)
        assert classify(cq) == "CQ" and classify(ucq) == "UCQ"

    def test_negation_leaves_all_positive_fragments(self):
        formula = Not(RelAtom("R", ["x"]))
        assert not is_ucq(formula)
        assert not is_positive(formula)
        assert not is_pos_forall_g(formula)
        assert classify(formula) == "FO"

    def test_pos_forall_g_guarded_universal(self):
        guarded = Forall(
            ["x"], Implies(RelAtom("Emp", ["x"]), Exists(["p"], RelAtom("Works", ["x", "p"])))
        )
        assert is_pos_forall_g(guarded)
        assert classify(guarded) == "Pos∀G"

    def test_unguarded_implication_not_pos_forall_g(self):
        bad = Forall(["x"], Implies(Not(RelAtom("R", ["x"])), RelAtom("S", ["x"])))
        assert not is_pos_forall_g(bad)

    def test_guard_must_cover_quantified_variables(self):
        bad = Forall(["x", "y"], Implies(RelAtom("R", ["x"]), RelAtom("S", ["x", "y"])))
        assert not is_pos_forall_g(bad)

    def test_naive_exactness_predicate(self):
        cq = Exists(["x"], RelAtom("R", ["x"]))
        universal = Forall(["x"], Implies(RelAtom("R", ["x"]), RelAtom("S", ["x"])))
        assert naive_evaluation_is_exact(cq, "owa")
        assert naive_evaluation_is_exact(universal, "cwa")
        assert not naive_evaluation_is_exact(universal, "owa")
        with pytest.raises(ValueError):
            naive_evaluation_is_exact(cq, "bogus")


class TestConjunctiveQueries:
    def test_formula_and_algebra_agree(self, graph_database):
        cq = ConjunctiveQuery(["x"], [Atom("E", [1, "y"]), Atom("E", ["y", "x"])])
        via_formula = cq.to_formula().answers(graph_database).rows_set()
        via_algebra = evaluate(cq.to_algebra(graph_database.schema()), graph_database).rows_set()
        assert via_formula == via_algebra == {(2,)}

    def test_constants_in_atoms_become_selections(self, figure1):
        cq = ConjunctiveQuery(
            ["name"],
            [Atom("Customers", ["c", "name"]), Atom("Payments", ["c", CqConst("o1")])],
        )
        result = evaluate(cq.to_algebra(figure1.schema()), figure1)
        assert result.rows_set() == {("John",)}
        via_formula = cq.to_formula().answers(figure1)
        assert via_formula.rows_set() == {("John",)}

    def test_explicit_equalities(self, figure1):
        cq = ConjunctiveQuery(
            ["cid"],
            [Atom("Payments", ["cid", "oid"])],
            equalities=[("oid", CqConst("o2"))],
        )
        result = evaluate(cq.to_algebra(figure1.schema()), figure1)
        assert result.rows_set() == {("c2",)}

    def test_unsafe_query_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery(["x"], [Atom("R", ["y"])])

    def test_ucq_union(self, figure1):
        cq1 = ConjunctiveQuery(["cid"], [Atom("Payments", ["cid", CqConst("o1")])])
        cq2 = ConjunctiveQuery(["cid"], [Atom("Payments", ["cid", CqConst("o2")])])
        ucq = UnionOfConjunctiveQueries([cq1, cq2])
        result = evaluate(ucq.to_algebra(figure1.schema()), figure1)
        assert result.rows_set() == {("c1",), ("c2",)}
        formula_result = ucq.to_formula().answers(figure1)
        assert formula_result.rows_set() == {("c1",), ("c2",)}

    def test_ucq_requires_consistent_arity(self):
        cq1 = ConjunctiveQuery(["x"], [Atom("R", ["x"])])
        cq2 = ConjunctiveQuery(["x", "y"], [Atom("S", ["x", "y"])])
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries([cq1, cq2])
