"""Tests for naïve evaluation, exact certain answers and the abstract framework."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import builder as rb, evaluate
from repro.calculus import Atom, ConjunctiveQuery, Exists, Forall, Implies, RelAtom
from repro.calculus import ast as fo
from repro.calculus.evaluation import FoQuery
from repro.datamodel import Database, Null, Relation
from repro.incomplete import (
    FiniteDatabaseDomain,
    certain_answer_object,
    certain_answers_intersection,
    certain_answers_owa,
    certain_answers_with_nulls,
    certain_boolean,
    constant_pool,
    count_valuations,
    iterate_worlds,
    naive_boolean,
    naive_evaluate,
    naive_evaluate_direct,
    possible_answers,
)


class TestWorlds:
    def test_constant_pool_contains_fresh_constants(self, rs_database):
        pool = constant_pool(rs_database)
        assert 1 in pool and len(pool) >= 2

    def test_count_valuations(self, rs_database):
        pool = constant_pool(rs_database)
        assert count_valuations(rs_database, pool) == len(pool)

    def test_iterate_worlds_yields_complete_databases(self, rs_database):
        for _, world in iterate_worlds(rs_database, constant_pool(rs_database)):
            assert world.is_complete()


class TestNaiveEvaluation:
    def test_direct_and_textbook_definitions_agree(self, rs_database):
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        assert naive_evaluate(query, rs_database) == naive_evaluate_direct(query, rs_database)

    def test_naive_path_query_true(self, graph_database):
        cq = ConjunctiveQuery([], [Atom("E", [1, "x"]), Atom("E", ["x", 2])])
        assert naive_boolean(cq.to_formula(), graph_database)

    def test_naive_difference_not_certain(self, rs_database):
        # {1} − {⊥} is {1} naïvely but has empty certain answers.
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        assert naive_evaluate_direct(query, rs_database).rows_set() == {(1,)}
        assert certain_answers_with_nulls(query, rs_database).rows_set() == set()


class TestCertainAnswers:
    def test_cert_with_nulls_keeps_nulls(self, rs_database, null_x):
        result = certain_answers_with_nulls(rb.relation("S"), rs_database)
        assert result.rows_set() == {(null_x,)}

    def test_cert_intersection_drops_nulls(self, rs_database):
        result = certain_answers_intersection(rb.relation("S"), rs_database)
        assert result.rows_set() == set()

    def test_ucq_naive_equals_certain(self, graph_database):
        # Theorem 4.4 (OWA/UCQ): naïve evaluation computes cert⊥ for UCQs.
        cq = ConjunctiveQuery(["x"], [Atom("E", [1, "x"])])
        query = cq.to_formula()
        assert (
            naive_evaluate_direct(query, graph_database).rows_set()
            == certain_answers_with_nulls(query, graph_database).rows_set()
        )

    def test_pos_forall_g_naive_equals_certain_under_cwa(self, null_x):
        # "Employees participating in all projects" with a null project.
        db = Database.from_dict(
            {
                "Emp": (("e",), [("ann",), ("bob",)]),
                "Proj": (("p",), [("p1",), (null_x,)]),
                "Works": (
                    ("e", "p"),
                    [("ann", "p1"), ("ann", null_x), ("bob", "p1")],
                ),
            }
        )
        formula = fo.And(
            RelAtom("Emp", ["e"]),
            Forall(
                ["p"], Implies(RelAtom("Proj", ["p"]), RelAtom("Works", ["e", "p"]))
            ),
        )
        query = FoQuery(formula, free=["e"])
        naive = naive_evaluate_direct(query, db).rows_set()
        certain = certain_answers_with_nulls(query, db).rows_set()
        assert naive == certain == {("ann",)}

    def test_full_fo_naive_can_overshoot(self, rs_database):
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        naive = naive_evaluate_direct(query, rs_database).rows_set()
        certain = certain_answers_with_nulls(query, rs_database).rows_set()
        assert certain < naive

    def test_certain_boolean(self, rs_database, graph_database):
        cq = ConjunctiveQuery([], [Atom("E", [1, "x"]), Atom("E", ["x", 2])])
        assert certain_boolean(cq.to_formula(), graph_database)
        not_there = ConjunctiveQuery([], [Atom("R", [2])])
        assert not certain_boolean(not_there.to_formula(), rs_database)

    def test_possible_answers_superset_of_certain(self, rs_database):
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        possible = possible_answers(query, rs_database).rows_set()
        certain = certain_answers_with_nulls(query, rs_database).rows_set()
        assert certain <= possible
        assert (1,) in possible

    def test_owa_certain_only_for_ucq(self, rs_database, graph_database):
        cq = ConjunctiveQuery(["x"], [Atom("E", [1, "x"])])
        assert certain_answers_owa(cq.to_formula(), graph_database).rows_set() == {
            (Null("x"),)
        }
        non_monotone = FoQuery(fo.Not(RelAtom("R", ["x"])), free=["x"])
        with pytest.raises(ValueError):
            certain_answers_owa(non_monotone, rs_database)

    def test_enumeration_guard(self):
        nulls = [Null(f"n{i}") for i in range(30)]
        db = Database({"R": Relation(("A",), [(n,) for n in nulls])})
        with pytest.raises(ValueError):
            certain_answers_with_nulls(rb.relation("R"), db)

    @settings(max_examples=25, deadline=None)
    @given(
        r_rows=st.lists(st.integers(0, 2), min_size=0, max_size=3),
        s_rows=st.lists(st.integers(0, 2), min_size=0, max_size=2),
        null_in_s=st.booleans(),
    )
    def test_certain_answers_always_sound_wrt_worlds(self, r_rows, s_rows, null_in_s):
        """Property: every certain answer is an answer in every possible world."""
        null = Null("p")
        s_content = [(v,) for v in s_rows] + ([(null,)] if null_in_s else [])
        db = Database(
            {"R": Relation(("A",), [(v,) for v in r_rows]), "S": Relation(("A",), s_content)}
        )
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        certain = certain_answers_with_nulls(query, db)
        for valuation, world in iterate_worlds(db, constant_pool(db)):
            answer = evaluate(query, world).rows_set()
            for row in certain:
                assert valuation.apply_tuple(row) in answer


class TestCertainAnswerObjects:
    def _powerset_domain(self):
        # Objects are frozensets of facts over {1, 2}; complete objects are all
        # of them; an "incomplete" object is modelled by its set of worlds.
        complete = [frozenset(), frozenset({1}), frozenset({2}), frozenset({1, 2})]
        objects = {obj: {obj} for obj in complete}
        # An OWA-style incomplete object: "contains 1, maybe more".
        incomplete = "at-least-1"
        objects[incomplete] = {frozenset({1}), frozenset({1, 2})}
        domain = FiniteDatabaseDomain(
            objects=list(objects), complete=complete, semantics=objects
        )
        return domain, incomplete

    def test_information_preorder(self):
        domain, incomplete = self._powerset_domain()
        assert domain.less_informative(incomplete, frozenset({1}))
        assert not domain.less_informative(frozenset({1}), incomplete)

    def test_certain_answer_object_exists_for_monotone_query(self):
        domain, incomplete = self._powerset_domain()

        def query(world):
            return world  # identity query

        answer = certain_answer_object(domain, domain, query, incomplete)
        assert answer == incomplete or domain.equivalent(answer, incomplete)

    def test_proposition_3_5_non_existence_under_cwa_target(self):
        # Target domain contains only complete objects under CWA (⟦x⟧ = {x}).
        complete = [frozenset(), frozenset({2})]
        target = FiniteDatabaseDomain(
            objects=complete, complete=complete, semantics={o: {o} for o in complete}
        )
        source_objects = {"D": {frozenset({2}), frozenset()}}
        source = FiniteDatabaseDomain(
            objects=["D", frozenset(), frozenset({2})],
            complete=complete,
            semantics={**{o: {o} for o in complete}, **source_objects},
        )

        def query(world):
            return frozenset({2}) if 2 in world else frozenset()

        # The answers {∅, {2}} have no greatest lower bound among CWA-complete
        # objects: neither is less informative than the other.
        assert certain_answer_object(source, target, query, "D") is None
