"""Tests for relational algebra: conditions, operators, set and bag evaluation."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.algebra import (
    And,
    Attr,
    Eq,
    IsConst,
    IsNull,
    Literal,
    Neq,
    Not,
    Or,
    builder as rb,
    evaluate,
    evaluate_bag,
    negate,
    operator_count,
    star,
    to_text,
    to_tree_text,
)
from repro.algebra.evaluator import Evaluator
from repro.datamodel import Database, Null, Relation
from repro.mvl.truthvalues import FALSE, TRUE, UNKNOWN


@pytest.fixture
def simple_db(null_x):
    return Database.from_dict(
        {
            "R": (("A", "B"), [(1, 2), (2, 3), (1, null_x)]),
            "S": (("B",), [(2,), (null_x,)]),
            "T": (("A", "B"), [(1, 2), (1, 2)]),
        }
    )


class TestConditions:
    def test_eq_naive_null_equals_only_itself(self, null_x):
        index = {"A": 0, "B": 1}
        cond = Eq(Attr("A"), Attr("B"))
        assert cond.eval_naive((null_x, null_x), index)
        assert not cond.eval_naive((null_x, 1), index)

    def test_eq_3vl_null_is_unknown(self, null_x):
        index = {"A": 0}
        cond = Eq(Attr("A"), Literal(1))
        assert cond.eval_3vl((null_x,), index) is UNKNOWN
        assert cond.eval_3vl((1,), index) is TRUE
        assert cond.eval_3vl((2,), index) is FALSE

    def test_const_null_tests_are_two_valued(self, null_x):
        index = {"A": 0}
        assert IsNull(Attr("A")).eval_3vl((null_x,), index) is TRUE
        assert IsConst(Attr("A")).eval_3vl((null_x,), index) is FALSE

    def test_kleene_or_with_unknown(self, null_x):
        index = {"A": 0}
        cond = Or(Eq(Attr("A"), Literal(1)), Neq(Attr("A"), Literal(1)))
        # A classical tautology evaluates to unknown on a null (SQL behaviour).
        assert cond.eval_3vl((null_x,), index) is UNKNOWN
        assert cond.eval_3vl((5,), index) is TRUE

    def test_negate_interchanges_operators(self):
        cond = And(Eq(Attr("A"), Attr("B")), IsNull(Attr("A")))
        negated = negate(cond)
        assert isinstance(negated, Or)
        assert isinstance(negated.left, Neq)
        assert isinstance(negated.right, IsConst)

    def test_negate_not_eliminates_double_negation(self):
        cond = Eq(Attr("A"), Literal(1))
        assert negate(Not(cond)) == cond

    def test_star_guards_disequalities(self, null_x):
        index = {"A": 0, "B": 1}
        starred = star(Neq(Attr("A"), Attr("B")))
        # On a null the starred disequality is false (not asserted).
        assert not starred.eval_naive((null_x, 1), index)
        assert starred.eval_naive((2, 1), index)

    def test_star_leaves_equalities_alone(self):
        cond = Eq(Attr("A"), Literal(1))
        assert star(cond) == cond

    def test_condition_operators_sugar(self):
        cond = Eq(Attr("A"), Literal(1)) & Neq(Attr("B"), Literal(2))
        assert isinstance(cond, And)
        assert isinstance(~Eq(Attr("A"), Literal(1)), Neq)


class TestSetEvaluation:
    def test_selection_projection(self, simple_db):
        query = rb.project(rb.select(rb.relation("R"), rb.eq("A", 1)), ["B"])
        result = evaluate(query, simple_db)
        assert result.rows_set() == {(2,), (Null("x"),)}

    def test_product_requires_disjoint_attributes(self, simple_db):
        with pytest.raises(ValueError):
            evaluate(rb.product(rb.relation("R"), rb.relation("T")), simple_db)

    def test_union_difference_intersection(self, simple_db):
        r_b = rb.project(rb.relation("R"), ["B"])
        s = rb.relation("S")
        assert evaluate(rb.union(r_b, s), simple_db).rows_set() == {
            (2,),
            (3,),
            (Null("x"),),
        }
        assert evaluate(rb.difference(r_b, s), simple_db).rows_set() == {(3,)}
        assert evaluate(rb.intersection(r_b, s), simple_db).rows_set() == {
            (2,),
            (Null("x"),),
        }

    def test_division(self):
        db = Database.from_dict(
            {
                "Takes": (("student", "course"), [("ann", "db"), ("ann", "ml"), ("bob", "db")]),
                "Courses": (("course",), [("db",), ("ml",)]),
            }
        )
        query = rb.division(rb.relation("Takes"), rb.relation("Courses"))
        assert evaluate(query, db).rows_set() == {("ann",)}

    def test_domain_relation_power(self, simple_db):
        dom2 = evaluate(rb.dom(2), simple_db)
        domain_size = len(simple_db.active_domain())
        assert len(dom2) == domain_size**2

    def test_unif_antijoin_strategies_agree(self, simple_db):
        query = rb.unif_antijoin(rb.project(rb.relation("R"), ["B"]), rb.relation("S"))
        hashed = Evaluator(unif_strategy="hashed").evaluate(query, simple_db)
        nested = Evaluator(unif_strategy="nested").evaluate(query, simple_db)
        assert hashed.rows_set() == nested.rows_set() == set()

    def test_natural_join_and_semijoins(self, simple_db):
        join = evaluate(rb.natural_join(rb.relation("R"), rb.relation("S")), simple_db)
        assert join.rows_set() == {(1, 2), (1, Null("x"))}
        semi = evaluate(rb.semijoin(rb.relation("R"), rb.relation("S")), simple_db)
        assert semi.rows_set() == {(1, 2), (1, Null("x"))}
        anti = evaluate(rb.antijoin(rb.relation("R"), rb.relation("S")), simple_db)
        assert anti.rows_set() == {(2, 3)}

    def test_rename(self, simple_db):
        query = rb.rename(rb.relation("S"), {"B": "C"})
        assert evaluate(query, simple_db).attributes == ("C",)

    def test_3vl_condition_mode_drops_unknown(self, simple_db):
        query = rb.select(rb.relation("R"), rb.eq("B", 2))
        naive = evaluate(query, simple_db)
        sql_like = evaluate(query, simple_db, condition_mode="3vl")
        assert naive.rows_set() == sql_like.rows_set() == {(1, 2)}

    def test_missing_relation_raises(self, simple_db):
        with pytest.raises(KeyError):
            evaluate(rb.relation("Missing"), simple_db)

    def test_boolean_query(self, simple_db):
        query = rb.project(rb.select(rb.relation("R"), rb.eq("A", 99)), [])
        assert not evaluate(query, simple_db)


class TestBagEvaluation:
    def test_projection_keeps_multiplicities(self, simple_db):
        query = rb.project(rb.relation("T"), ["A"])
        assert evaluate_bag(query, simple_db).multiplicity((1,)) == 2
        assert evaluate(query, simple_db).multiplicity((1,)) == 1

    def test_union_adds_and_difference_subtracts(self, simple_db):
        t_a = rb.project(rb.relation("T"), ["A"])
        union = evaluate_bag(rb.union(t_a, t_a), simple_db)
        assert union.multiplicity((1,)) == 4
        diff = evaluate_bag(rb.difference(rb.union(t_a, t_a), t_a), simple_db)
        assert diff.multiplicity((1,)) == 2

    def test_product_multiplies(self, simple_db):
        query = rb.product(rb.relation("T"), rb.rename(rb.relation("S"), {"B": "C"}))
        result = evaluate_bag(query, simple_db)
        assert result.multiplicity((1, 2, 2)) == 2


class TestPrettyPrinting:
    def test_to_text_mentions_operators(self, simple_db):
        query = rb.project(rb.select(rb.relation("R"), rb.eq("A", 1)), ["B"])
        text = to_text(query)
        assert "σ" in text and "π" in text and "R" in text

    def test_tree_text_has_one_line_per_node(self, simple_db):
        query = rb.difference(rb.project(rb.relation("R"), ["B"]), rb.relation("S"))
        assert len(to_tree_text(query).splitlines()) == 4

    def test_operator_count(self):
        query = rb.union(rb.relation("R"), rb.union(rb.relation("S"), rb.relation("T")))
        counts = operator_count(query)
        assert counts["Union"] == 2
        assert counts["RelationRef"] == 3


class TestEvaluationProperties:
    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=8
        ),
        other=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=8
        ),
    )
    def test_set_operations_match_python_sets(self, rows, other):
        db = Database(
            {"R": Relation(("A", "B"), rows), "S": Relation(("A", "B"), other)}
        )
        r_set, s_set = set(rows), set(other)
        assert evaluate(
            rb.union(rb.relation("R"), rb.relation("S")), db
        ).rows_set() == r_set | s_set
        assert evaluate(
            rb.difference(rb.relation("R"), rb.relation("S")), db
        ).rows_set() == r_set - s_set
        assert evaluate(
            rb.intersection(rb.relation("R"), rb.relation("S")), db
        ).rows_set() == r_set & s_set

    @given(
        rows=st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=6)
    )
    def test_projection_then_selection_is_sound(self, rows):
        db = Database({"R": Relation(("A", "B"), rows)})
        query = rb.project(rb.select(rb.relation("R"), rb.eq("A", 1)), ["B"])
        expected = {(b,) for (a, b) in set(rows) if a == 1}
        assert evaluate(query, db).rows_set() == expected
