"""Tests for repro.algebra.stats and the consumers it steers.

Covers the statistics layer itself (one-pass counts, content-addressed
caching, provider keys), the System-R-style estimator formulas, and the
three regressions this PR fixes:

* the optimizer memo key folds ``Stats.key()`` in, so mutating a
  database replans instead of serving a stale plan (the build side
  visibly flips without any cache clearing);
* the hash-join build side is pinned from estimates when statistics are
  available and falls back to actual sizes only when they are not;
* sharded fragments plan from their *own* statistics — the pinned build
  side proves the choice was made without coalescing the fragments.
"""

from __future__ import annotations

import pytest

from repro import Database, Engine, Null, Relation
from repro.algebra import ast as ra
from repro.algebra import builder as rb, walk
from repro.algebra.conditions import Attr, Eq, IsNull, Literal
from repro.algebra.evaluator import Evaluator
from repro.algebra.optimize import clear_optimize_memo, optimize_plan
from repro.algebra.stats import (
    DEFAULT_ROWS,
    PlanEstimator,
    Stats,
    estimate_cost,
    relation_stats,
)
from repro.sharding import HashPartitioner, ShardedDatabase


def _rs_database(r_rows: int, s_rows: int) -> Database:
    """R(a, b) with ``r_rows`` rows and S(c, d) with ``s_rows`` rows.

    Join values overlap so σ(R × S) with ``a = c`` is non-trivial.
    """
    return Database.from_dict(
        {
            "R": (("a", "b"), [(i % 4, f"r{i}") for i in range(r_rows)]),
            "S": (("c", "d"), [(i % 4, f"s{i}") for i in range(s_rows)]),
        }
    )


_JOIN_QUERY = rb.select(
    rb.product(rb.relation("R"), rb.relation("S")), Eq(Attr("a"), Attr("c"))
)


def _the_equijoin(plan: ra.Query) -> ra.EquiJoin:
    joins = [node for node in walk(plan) if isinstance(node, ra.EquiJoin)]
    assert len(joins) == 1, plan
    return joins[0]


# ----------------------------------------------------------------------
# RelationStats: the one-pass counts and their cache
# ----------------------------------------------------------------------
class TestRelationStats:
    def test_counts(self, null_x):
        relation = Relation(
            ("a", "b"),
            [(1, "x"), (1, "y"), (1, "x"), (null_x, "z")],
        )
        stats = relation_stats(relation)
        assert stats.attributes == ("a", "b")
        assert stats.rows == 3  # distinct rows
        assert stats.total == 4  # with multiplicities
        assert stats.distinct == (2, 3)  # {1, ⊥} × {x, y, z}
        assert stats.nulls == (1, 0)

    def test_cache_is_content_addressed(self):
        first = Relation(("a",), [(1,), (2,)])
        second = Relation(("a",), [(2,), (1,)])  # same content, new object
        assert relation_stats(first) is relation_stats(second)

    def test_key_is_hashable_and_stable(self, null_x):
        relation = Relation(("a",), [(null_x,), (1,)])
        assert hash(relation_stats(relation).key()) == hash(
            relation_stats(relation).key()
        )


class TestStatsProvider:
    def test_absent_relation_is_none(self):
        stats = Stats(_rs_database(2, 2))
        assert stats.relation("Nope") is None
        assert stats.relation("R") is not None

    def test_key_distinguishes_mutated_databases(self):
        assert Stats(_rs_database(4, 2)).key() != Stats(_rs_database(2, 4)).key()
        assert Stats(_rs_database(3, 3)).key() == Stats(_rs_database(3, 3)).key()


# ----------------------------------------------------------------------
# Estimation formulas
# ----------------------------------------------------------------------
class TestEstimator:
    def test_equality_selectivity_is_one_over_distinct(self):
        db = _rs_database(8, 2)  # R.a has 4 distinct values over 8 rows
        estimator = PlanEstimator(db.schema(), Stats(db))
        base = estimator.estimate(rb.relation("R"))
        assert base.rows == 8.0
        selected = estimator.estimate(
            rb.select(rb.relation("R"), Eq(Attr("a"), Literal(1)))
        )
        assert selected.rows == pytest.approx(8.0 / 4.0)

    def test_join_size_divides_by_max_distinct(self):
        db = _rs_database(8, 4)  # both join columns have 4 distinct values
        estimator = PlanEstimator(db.schema(), Stats(db))
        join = ra.EquiJoin(rb.relation("R"), rb.relation("S"), (("a", "c"),))
        assert estimator.estimate(join).rows == pytest.approx(8.0 * 4.0 / 4.0)

    def test_null_selectivity_from_null_counts(self, null_x):
        db = Database.from_dict(
            {"R": (("a",), [(null_x,), (1,), (2,), (3,)])}
        )
        estimator = PlanEstimator(db.schema(), Stats(db))
        selected = estimator.estimate(
            rb.select(rb.relation("R"), IsNull(Attr("a")))
        )
        assert selected.rows == pytest.approx(4.0 * (1.0 / 4.0))

    def test_domain_relation_is_adom_to_the_k(self):
        db = _rs_database(4, 4)
        adom = len(db.active_domain())
        estimator = PlanEstimator(db.schema(), Stats(db))
        dom2 = estimator.estimate(ra.DomainRelation(("u", "v")))
        assert dom2.rows == pytest.approx(float(adom) ** 2)

    def test_unknown_relation_uses_default_rows(self):
        db = _rs_database(2, 2)
        estimator = PlanEstimator(db.schema(), Stats(Database({})))
        assert estimator.estimate(rb.relation("R")).rows == DEFAULT_ROWS

    def test_cost_sums_intermediate_cardinalities(self):
        db = _rs_database(4, 4)
        plan = rb.select(rb.relation("R"), Eq(Attr("a"), Literal(1)))
        estimator = PlanEstimator(db.schema(), Stats(db))
        expected = estimator.estimate(plan).rows + estimator.estimate(
            rb.relation("R")
        ).rows
        assert estimate_cost(plan, db.schema(), Stats(db)) == pytest.approx(expected)


# ----------------------------------------------------------------------
# The memo-key regression: mutate, then replan (no cache clearing!)
# ----------------------------------------------------------------------
class TestOptimizeMemoKey:
    def test_mutation_then_replan_flips_the_build_side(self):
        clear_optimize_memo()
        before = _rs_database(6, 2)
        after = _rs_database(2, 6)  # "the same database, mutated"
        plan_before = optimize_plan(
            _JOIN_QUERY, before.schema(), stats=Stats(before)
        )
        # Deliberately NO clear_optimize_memo() here: with statistics
        # folded into the memo key the second call misses on its own.
        plan_after = optimize_plan(_JOIN_QUERY, after.schema(), stats=Stats(after))
        assert _the_equijoin(plan_before).build == "right"  # S was smaller
        assert _the_equijoin(plan_after).build == "left"  # now R is

    def test_statistically_identical_databases_share_the_plan(self):
        clear_optimize_memo()
        first = optimize_plan(
            _JOIN_QUERY, _rs_database(4, 2).schema(), stats=Stats(_rs_database(4, 2))
        )
        second = optimize_plan(
            _JOIN_QUERY, _rs_database(4, 2).schema(), stats=Stats(_rs_database(4, 2))
        )
        assert first is second  # memo hit, not just equality

    def test_stats_free_entries_never_alias_stats_entries(self):
        clear_optimize_memo()
        db = _rs_database(6, 2)
        blind = optimize_plan(_JOIN_QUERY, db.schema())
        informed = optimize_plan(_JOIN_QUERY, db.schema(), stats=Stats(db))
        blind_again = optimize_plan(_JOIN_QUERY, db.schema())
        assert _the_equijoin(blind).build is None
        assert _the_equijoin(informed).build == "right"
        assert _the_equijoin(blind_again).build is None


# ----------------------------------------------------------------------
# The build-side regression: estimates pin it, actuals are the fallback
# ----------------------------------------------------------------------
class TestBuildSide:
    def test_pinned_build_sides_are_result_identical(self):
        db = _rs_database(5, 3)
        pairs = (("a", "c"),)
        reference = None
        for build in (None, "left", "right"):
            join = ra.EquiJoin(rb.relation("R"), rb.relation("S"), pairs, build=build)
            result = Evaluator().evaluate(join, db)
            if reference is None:
                reference = result
            assert result == reference, f"build={build!r}"

    def test_invalid_build_side_rejected(self):
        with pytest.raises(ValueError, match="build"):
            ra.EquiJoin(
                rb.relation("R"), rb.relation("S"), (("a", "c"),), build="middle"
            )

    def test_estimates_pin_the_smaller_side(self):
        db = _rs_database(6, 2)
        plan = optimize_plan(_JOIN_QUERY, db.schema(), stats=Stats(db))
        assert _the_equijoin(plan).build == "right"
        assert Evaluator().evaluate(plan, db) == Evaluator().evaluate(
            _JOIN_QUERY, db
        )

    def test_without_stats_the_build_side_stays_open(self):
        db = _rs_database(6, 2)
        plan = optimize_plan(_JOIN_QUERY, db.schema())
        assert _the_equijoin(plan).build is None  # evaluator uses actual sizes

    def test_sharded_fragments_plan_from_their_own_statistics(self):
        db = _rs_database(6, 2)
        sharded = ShardedDatabase.from_database(db, 2, HashPartitioner())
        clear_optimize_memo()
        for shard in range(sharded.shard_count):
            fragment_db = sharded.shard_database(shard)
            plan = optimize_plan(
                _JOIN_QUERY, fragment_db.schema(), stats=Stats(fragment_db)
            )
            # The build side is pinned before any evaluation touches the
            # fragment — planning needed no coalesced database.
            assert _the_equijoin(plan).build is not None, f"shard {shard}"
        engine = Engine()
        fast = engine.evaluate(
            _JOIN_QUERY, sharded, strategy="naive", stats=True, use_cache=False
        )
        plain = engine.evaluate(
            _JOIN_QUERY, sharded, strategy="naive", stats=False, use_cache=False
        )
        assert fast.relation == plain.relation


# ----------------------------------------------------------------------
# Selection pushdown into the unification anti-semijoin's Dom side
# ----------------------------------------------------------------------
class TestUnifAntiSemiJoinPushdown:
    def test_selection_on_left_attributes_is_pushed_down(self):
        db = _rs_database(3, 3)
        plan = ra.Selection(
            ra.UnifAntiSemiJoin(rb.relation("R"), rb.relation("S")),
            Eq(Attr("a"), Literal(1)),
        )
        optimized = optimize_plan(plan, db.schema())
        unif = [
            node for node in walk(optimized)
            if isinstance(node, ra.UnifAntiSemiJoin)
        ]
        assert len(unif) == 1
        assert any(
            isinstance(node, ra.Selection) for node in walk(unif[0].left)
        ), optimized
        # ...and no selection is left sitting above the anti-semijoin.
        assert not any(
            isinstance(node, ra.Selection)
            and any(n is unif[0] for n in walk(node.child))
            for node in walk(optimized)
        ), optimized
        assert Evaluator().evaluate(optimized, db) == Evaluator().evaluate(plan, db)


# ----------------------------------------------------------------------
# The planner records the numbers it decided on
# ----------------------------------------------------------------------
class TestPlannerEstimates:
    def test_auto_tie_break_records_numeric_costs(self, null_x):
        db = Database.from_dict(
            {
                "R": (("a",), [(1,), (2,), (null_x,)]),
                "S": (("a",), [(2,), (3,)]),
            }
        )
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        result = Engine().evaluate(query, db, strategy="auto", use_cache=False)
        plan = result.metadata["plan"]
        estimates = plan["estimates"]
        assert set(estimates) >= {"approx-guagliardo16", "approx-libkin16"}
        assert all(
            isinstance(value, float) and value > 0 for value in estimates.values()
        )
        assert "estimated cost" in plan["reason"]
        assert plan["strategy"] in ("approx-guagliardo16", "approx-libkin16")

    def test_exact_fragment_needs_no_numbers(self):
        db = _rs_database(2, 2)
        query = rb.select(rb.relation("R"), Eq(Attr("a"), Literal(1)))
        result = Engine().evaluate(query, db, strategy="auto", use_cache=False)
        plan = result.metadata["plan"]
        assert plan["strategy"] == "naive"
        assert plan["estimates"] == {}
