"""Tenant cache namespaces and the shared-memory backend.

Multi-tenant isolation contract: two
:class:`~repro.engine.cache.NamespacedCacheBackend` views with different
namespaces over ONE shared backend never see each other's entries —
across every backend kind (memory, disk, shared-memory).  Plus the
shared-memory backend's own contract: pickle round-trip, LRU eviction,
cross-instance visibility by segment name, torn/absent reads are misses,
``clear``/``close`` unlink, and the ``"shm:<name>"`` resolver spec.
"""

from __future__ import annotations

import uuid

import pytest

from repro.datamodel.database import Database
from repro.engine import Engine, SharedMemoryCacheBackend, resolve_cache_backend
from repro.engine.cache import (
    DiskCacheBackend,
    MemoryCacheBackend,
    NamespacedCacheBackend,
)


def _shm_name() -> str:
    # Unique per test: segments are host-global, parallel test runs must
    # not collide.
    return f"t{uuid.uuid4().hex[:7]}"


@pytest.fixture(params=["memory", "disk", "shm"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryCacheBackend(max_size=64)
    elif request.param == "disk":
        yield DiskCacheBackend(tmp_path / "cache", max_entries=64)
    else:
        shm = SharedMemoryCacheBackend(_shm_name(), max_entries=64)
        yield shm
        shm.close()


# ----------------------------------------------------------------------
# Namespace isolation, over every backend kind
# ----------------------------------------------------------------------
def test_namespaces_do_not_share_entries(backend):
    alice = NamespacedCacheBackend(backend, "alice")
    bob = NamespacedCacheBackend(backend, "bob")
    alice.put(("q", "db"), {"rows": [1, 2]})
    assert alice.get(("q", "db")) == {"rows": [1, 2]}
    assert bob.get(("q", "db")) is None  # same key, other tenant: miss
    bob.put(("q", "db"), {"rows": [3]})
    assert alice.get(("q", "db")) == {"rows": [1, 2]}  # unclobbered
    assert bob.get(("q", "db")) == {"rows": [3]}


def test_namespace_views_track_their_own_hits_and_misses(backend):
    alice = NamespacedCacheBackend(backend, "alice")
    bob = NamespacedCacheBackend(backend, "bob")
    alice.put("k", "v")
    alice.get("k")
    bob.get("k")
    assert alice.stats.hits == 1 and alice.stats.misses == 0
    assert bob.stats.hits == 0 and bob.stats.misses == 1


def test_engines_sharing_backend_stay_isolated(backend):
    """Identical (query, db) under different tenants: both compute."""
    db = Database.from_dict({"R": (("a",), [(1,), (2,)])})
    alice = Engine(cache=NamespacedCacheBackend(backend, "alice"))
    bob = Engine(cache=NamespacedCacheBackend(backend, "bob"))
    try:
        first = alice.evaluate("SELECT a FROM R", db)
        again = alice.evaluate("SELECT a FROM R", db)
        other = bob.evaluate("SELECT a FROM R", db)
        assert first.from_cache is False
        assert again.from_cache is True  # same tenant: hit
        assert other.from_cache is False  # other tenant: isolated
        assert other.relation.sorted_rows() == first.relation.sorted_rows()
    finally:
        alice.close()
        bob.close()


# ----------------------------------------------------------------------
# SharedMemoryCacheBackend specifics
# ----------------------------------------------------------------------
def test_shm_roundtrip_and_len():
    shm = SharedMemoryCacheBackend(_shm_name(), max_entries=8)
    try:
        assert shm.get("missing") is None
        shm.put(("k", 1), {"answer": [(1,), (2,)]})
        assert shm.get(("k", 1)) == {"answer": [(1,), (2,)]}
        assert len(shm) == 1
        assert shm.stats.hits == 1 and shm.stats.misses == 1
    finally:
        shm.close()


def test_shm_lru_eviction_bounds_owned_segments():
    shm = SharedMemoryCacheBackend(_shm_name(), max_entries=2)
    try:
        shm.put("a", 1)
        shm.put("b", 2)
        assert shm.get("a") == 1  # refresh: "b" is now the LRU entry
        shm.put("c", 3)
        assert len(shm) == 2
        assert shm.get("b") is None  # evicted and unlinked
        assert shm.get("a") == 1
        assert shm.get("c") == 3
    finally:
        shm.close()


def test_shm_cross_instance_visibility_same_prefix():
    name = _shm_name()
    writer = SharedMemoryCacheBackend(name, max_entries=8)
    reader = SharedMemoryCacheBackend(name, max_entries=8)
    try:
        writer.put("shared-key", ("payload", 42))
        # The reader never stored anything, but attaches by segment name.
        assert reader.get("shared-key") == ("payload", 42)
        assert len(reader) == 0  # ownership stays with the writer
    finally:
        reader.close()
        writer.close()


def test_shm_clear_unlinks_everything():
    shm = SharedMemoryCacheBackend(_shm_name(), max_entries=8)
    try:
        shm.put("a", 1)
        shm.put("b", 2)
        shm.clear()
        assert len(shm) == 0
        assert shm.get("a") is None and shm.get("b") is None
        assert shm.lifetime_stats.misses >= 1
    finally:
        shm.close()


def test_shm_close_disables_backend():
    shm = SharedMemoryCacheBackend(_shm_name(), max_entries=8)
    shm.put("a", 1)
    shm.close()
    assert shm.enabled is False
    shm.put("b", 2)  # silently ignored, no resurrection
    assert len(shm) == 0


def test_shm_unpicklable_values_stay_uncached():
    shm = SharedMemoryCacheBackend(_shm_name(), max_entries=8)
    try:
        shm.put("fn", lambda x: x)  # lambdas don't pickle
        assert shm.get("fn") is None
        assert len(shm) == 0
    finally:
        shm.close()


def test_resolver_accepts_shm_spec():
    resolved = resolve_cache_backend(f"shm:{_shm_name()}", cache_size=16)
    try:
        assert isinstance(resolved, SharedMemoryCacheBackend)
        assert resolved.max_entries == 16
        resolved.put("k", "v")
        assert resolved.get("k") == "v"
    finally:
        resolved.close()


def test_resolver_rejects_unusable_shm_name():
    with pytest.raises(Exception):
        resolve_cache_backend("shm:///", cache_size=16)
