"""Randomized stats-on-vs-stats-off equivalence harness.

The soundness contract of :mod:`repro.algebra.stats`: statistics steer
*cost* decisions only — join order, hash build side, strategy
tie-breaks — never answers.  For any (query, database), evaluating with
``stats=True`` must be **result-identical** to ``stats=False`` (both
with the optimizer on, since stats only act through it) —

* through the engine, for every registered strategy (all six), tuple
  for tuple including the certain/possible/certainly-false side
  relations and the per-tuple certainty annotations;
* under set and bag semantics;
* on monolithic and sharded databases (each fragment plans from its
  *own* statistics, so fragment plans may differ from the monolithic
  one — the results must not);
* at the raw evaluator level in **both condition modes** (``naive`` and
  ``3vl``), where the estimate-driven join reordering and pinned build
  sides actually fire.

Databases are tiny (≤ 2 nulls) so ``exact-certain`` stays computable;
the query generator is shared in shape with
``tests/test_optimizer_equivalence.py`` and leans harder on products
with cross-side equalities so the reorder-joins and build-side rules
(the stats-only rewrites) fire often enough to be worth guarding — the
coverage floor at the bottom asserts that stats actually *changed* the
chosen plan in a meaningful fraction of cases.

Seed fixed, overridable via ``REPRO_STATS_SEED``; case count via
``REPRO_STATS_CASES`` (CI runs a second seed).
"""

from __future__ import annotations

import itertools
import os
import random
from collections import Counter

from repro import Database, Engine, Null, Relation
from repro.algebra import builder as rb
from repro.algebra.conditions import And, Attr, Eq, Literal, Neq
from repro.algebra.evaluator import Evaluator
from repro.algebra.optimize import optimize_plan
from repro.algebra.stats import Stats
from repro.engine import EngineError, StrategyNotApplicableError, available_strategies
from repro.sharding import HashPartitioner, ShardedDatabase
from repro.workloads import GeneratorConfig, RelationSpec, generate_database

SEED = int(os.environ.get("REPRO_STATS_SEED", "20260808"))
CASES = int(os.environ.get("REPRO_STATS_CASES", "80"))


# ----------------------------------------------------------------------
# Random databases: tiny, skewed sizes so estimates have something to say
# ----------------------------------------------------------------------
def _build_database(rng: random.Random) -> Database:
    config = GeneratorConfig(
        relations=(
            # Deliberately skewed row counts: with near-equal inputs the
            # estimate-driven choices agree with the written order and
            # nothing interesting is exercised.
            RelationSpec("R", ("a", "b"), rng.randint(1, 6)),
            RelationSpec("S", ("c", "d"), rng.randint(1, 6)),
            RelationSpec("T", ("e",), rng.randint(1, 4)),
        ),
        domain_size=4,
        null_rate=0.0,
        seed=rng.randrange(1_000_000),
    )
    db = generate_database(config)
    return _inject_k_nulls(db, rng.randint(0, 2), rng.random() < 0.5, rng)


def _inject_k_nulls(db: Database, k: int, repeated: bool, rng: random.Random) -> Database:
    if k == 0:
        return db
    rows_by_relation = {
        name: list(relation.iter_rows_bag()) for name, relation in db.relations()
    }
    positions = [
        (name, i, j)
        for name, rows in rows_by_relation.items()
        for i, row in enumerate(rows)
        for j in range(len(row))
    ]
    chosen = rng.sample(positions, min(k, len(positions)))
    shared = Null(f"s{rng.randrange(1_000_000)}")
    for index, (name, i, j) in enumerate(chosen):
        null = shared if repeated else Null(f"s{rng.randrange(1_000_000)}_{index}")
        row = list(rows_by_relation[name][i])
        row[j] = null
        rows_by_relation[name][i] = tuple(row)
    return Database(
        {
            name: Relation(db[name].attributes, rows)
            for name, rows in rows_by_relation.items()
        }
    )


# ----------------------------------------------------------------------
# Random queries, biased towards join towers (where stats act)
# ----------------------------------------------------------------------
class _QueryGen:
    def __init__(self, rng: random.Random, schema):
        self.rng = rng
        self.schema = schema
        self._fresh = itertools.count()

    def fresh_attr(self) -> str:
        return f"x{next(self._fresh)}"

    def condition(self, attrs):
        rng = self.rng
        left = Attr(rng.choice(attrs))
        roll = rng.random()
        if roll < 0.1:
            right = left
        elif len(attrs) > 1 and roll < 0.45:
            right = Attr(rng.choice(attrs))
        else:
            right = Literal(f"v{rng.randrange(4)}")
        condition = (Eq if rng.random() < 0.7 else Neq)(left, right)
        if rng.random() < 0.3:
            other = Attr(rng.choice(attrs))
            condition = And(condition, Eq(other, Literal(f"v{rng.randrange(4)}")))
        return condition

    def with_arity(self, arity: int):
        rng = self.rng
        name = rng.choice(["R", "S"] if arity == 2 else ["R", "S", "T"])
        plan = rb.relation(name)
        attrs = list(plan.output_attributes(self.schema))
        while len(attrs) < arity:
            plan = rb.product(plan, rb.rename(rb.relation("T"), {"e": self.fresh_attr()}))
            attrs = list(plan.output_attributes(self.schema))
        if len(attrs) > arity:
            keep = rng.sample(attrs, arity)
            rng.shuffle(keep)
            plan = rb.project(plan, keep)
            attrs = keep
        if rng.random() < 0.4:
            plan = rb.select(plan, self.condition(attrs))
        return plan

    def tower(self):
        """σ-stack over a ×-tower of 3 leaves — reorder-joins territory."""
        rng = self.rng
        leaves = []
        for name in rng.sample(["R", "S", "T"], 3):
            leaf = rb.relation(name)
            renaming = {
                a: self.fresh_attr()
                for a in leaf.output_attributes(self.schema)
            }
            leaves.append(rb.rename(leaf, renaming))
        plan = rb.product(rb.product(leaves[0], leaves[1]), leaves[2])
        all_attrs = [list(l.output_attributes(self.schema)) for l in leaves]
        # Connect leaf 2 to each of the first two (but not 0–1 directly):
        # exactly the shape where written order materialises a cartesian
        # product and the reorder rule should not.
        for i in (0, 1):
            plan = rb.select(
                plan,
                Eq(Attr(rng.choice(all_attrs[i])), Attr(rng.choice(all_attrs[2]))),
            )
        return plan

    def query(self, depth: int):
        rng = self.rng
        if rng.random() < 0.2:
            return self.tower()
        if depth <= 0 or rng.random() < 0.2:
            return rb.relation(rng.choice(["R", "S", "T"]))
        child = self.query(depth - 1)
        attrs = list(child.output_attributes(self.schema))
        op = rng.choices(
            ["select", "project", "rename", "product", "union", "difference",
             "intersection", "division", "semijoin"],
            weights=[20, 10, 6, 30, 10, 10, 6, 4, 4],
        )[0]
        if op == "select":
            return rb.select(child, self.condition(attrs))
        if op == "project":
            keep = rng.sample(attrs, rng.randint(1, len(attrs)))
            return rb.project(child, keep)
        if op == "rename":
            renamed = rng.sample(attrs, rng.randint(1, len(attrs)))
            return rb.rename(child, {a: self.fresh_attr() for a in renamed})
        if op == "product":
            right = self.with_arity(rng.choice([1, 2]))
            right_attrs = right.output_attributes(self.schema)
            disjoint = rb.rename(right, {a: self.fresh_attr() for a in right_attrs})
            plan = rb.product(child, disjoint)
            if rng.random() < 0.75:
                left_attr = rng.choice(attrs)
                right_attr = rng.choice(
                    list(disjoint.output_attributes(self.schema))
                )
                plan = rb.select(plan, Eq(Attr(left_attr), Attr(right_attr)))
            return plan
        if op in ("union", "difference", "intersection"):
            right = self.with_arity(len(attrs))
            build = {"union": rb.union, "difference": rb.difference,
                     "intersection": rb.intersection}[op]
            return build(child, right)
        if op == "division" and len(attrs) >= 2:
            divisor = self.with_arity(1)
            divisor_attr = divisor.output_attributes(self.schema)[0]
            return rb.division(child, rb.rename(divisor, {divisor_attr: attrs[-1]}))
        if op == "semijoin":
            right = self.with_arity(1)
            right_attr = right.output_attributes(self.schema)[0]
            return rb.semijoin(
                child, rb.rename(right, {right_attr: rng.choice(attrs)})
            )
        return child


# ----------------------------------------------------------------------
# Result comparison: tuple-for-tuple identity
# ----------------------------------------------------------------------
def _assert_identical(plain, fast, label: str) -> None:
    assert plain.relation.attributes == fast.relation.attributes, label
    assert plain.relation.rows_bag() == fast.relation.rows_bag(), (
        f"{label}: primary answers differ\nstats off: "
        f"{plain.relation.sorted_rows()}\nstats on:  {fast.relation.sorted_rows()}"
    )
    for side in ("certain", "possible", "certainly_false"):
        a, b = getattr(plain, side), getattr(fast, side)
        assert (a is None) == (b is None), f"{label}: {side} presence differs"
        if a is not None:
            assert a.rows_set() == b.rows_set(), f"{label}: {side} rows differ"
    plain_annotated = Counter((t.row, t.status, t.multiplicity) for t in plain.tuples)
    fast_annotated = Counter((t.row, t.status, t.multiplicity) for t in fast.tuples)
    assert plain_annotated == fast_annotated, f"{label}: annotations differ"


def _evaluate_both(engine, query, db, label, **kwargs):
    """(stats-off, stats-on) results, or None when both raise alike."""
    try:
        plain = engine.evaluate(
            query, db, optimize=True, stats=False, use_cache=False, **kwargs
        )
    except (StrategyNotApplicableError, EngineError, ValueError, TypeError) as exc:
        try:
            engine.evaluate(
                query, db, optimize=True, stats=True, use_cache=False, **kwargs
            )
        except type(exc):
            return None
        raise AssertionError(
            f"{label}: stats-off raised {type(exc).__name__} but the "
            "stats-on evaluation did not"
        )
    fast = engine.evaluate(
        query, db, optimize=True, stats=True, use_cache=False, **kwargs
    )
    _assert_identical(plain, fast, label)
    return plain, fast


def _stats_changed_plan(query, db) -> bool:
    try:
        blind = optimize_plan(query, db.schema())
        informed = optimize_plan(query, db.schema(), stats=Stats(db))
    except (ValueError, KeyError, TypeError):
        return False
    return blind != informed


def _run_case(engine: Engine, rng: random.Random, case: int) -> int:
    db = _build_database(rng)
    gen = _QueryGen(rng, db.schema())
    query = gen.query(rng.randint(1, 3))
    label_base = f"case {case} (seed {SEED})"

    for strategy in available_strategies():
        _evaluate_both(
            engine, query, db, f"{label_base}, strategy {strategy}", strategy=strategy
        )

    # Bag semantics through the engine (naïve is the bag-capable algebra path).
    _evaluate_both(
        engine, query, db, f"{label_base}, naive (bag)", strategy="naive",
        semantics="bag",
    )

    # Sharded evaluation: every fragment plans from its own statistics.
    sharded = ShardedDatabase.from_database(
        db, rng.choice([2, 3]), HashPartitioner()
    )
    for strategy in ("naive", "approx-guagliardo16"):
        _evaluate_both(
            engine, query, sharded, f"{label_base}, sharded {strategy}",
            strategy=strategy,
        )

    # Raw evaluator, both condition modes, set and bag: identical relations.
    for mode in ("naive", "3vl"):
        for bag in (False, True):
            label = f"{label_base}, evaluator ({mode}, {'bag' if bag else 'set'})"
            try:
                plain = Evaluator(
                    condition_mode=mode, bag=bag, optimize=True
                ).evaluate(query, db)
            except (ValueError, TypeError, KeyError) as exc:
                try:
                    Evaluator(
                        condition_mode=mode, bag=bag, optimize=True, stats=True
                    ).evaluate(query, db)
                except type(exc):
                    continue
                raise AssertionError(f"{label}: only stats-off raised")
            fast = Evaluator(
                condition_mode=mode, bag=bag, optimize=True, stats=True
            ).evaluate(query, db)
            assert plain == fast, (
                f"{label}: relations differ\nstats off: {plain.sorted_rows()}"
                f"\nstats on:  {fast.sorted_rows()}"
            )
    return int(_stats_changed_plan(query, db))


def test_stats_on_equals_stats_off_randomized():
    engine = Engine()
    plans_changed = 0
    for case in range(CASES):
        rng = random.Random(SEED * 1_000_003 + case)
        plans_changed += _run_case(engine, rng, case)
    # Statistics must actually flip plan choices (join order / build
    # side) in a meaningful fraction of cases, or this harness is
    # comparing a rewrite against itself and guards nothing.
    assert plans_changed >= CASES // 10, plans_changed


def test_stats_respect_soundness_chain():
    """Q+ ⊆ cert⊥ ⊆ naive and cert⊥ ⊆ Q? with statistics on."""
    engine = Engine()
    checked = 0
    for case in range(min(CASES, 30)):
        rng = random.Random(SEED * 7_919 + case)
        db = _build_database(rng)
        gen = _QueryGen(rng, db.schema())
        query = gen.query(rng.randint(1, 3))
        results = {}
        for strategy in ("exact-certain", "naive", "approx-guagliardo16",
                         "approx-libkin16"):
            try:
                results[strategy] = engine.evaluate(
                    query, db, strategy=strategy, optimize=True, stats=True,
                    use_cache=False,
                )
            except (StrategyNotApplicableError, EngineError, ValueError, TypeError):
                continue
        if "exact-certain" not in results:
            continue
        checked += 1
        cert = results["exact-certain"].relation.rows_set()
        if "approx-guagliardo16" in results:
            guag = results["approx-guagliardo16"]
            assert guag.certain.rows_set() <= cert, f"case {case}: Q+ ⊄ cert"
            assert cert <= guag.possible.rows_set(), f"case {case}: cert ⊄ Q?"
        if "approx-libkin16" in results:
            assert results["approx-libkin16"].certain.rows_set() <= cert, (
                f"case {case}: Qt ⊄ cert"
            )
        if "naive" in results:
            assert cert <= results["naive"].relation.rows_set(), (
                f"case {case}: cert ⊄ naive"
            )
    assert checked >= 8, checked
