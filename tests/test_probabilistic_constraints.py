"""Tests for the probabilistic approximations (Section 4.3) and the chase."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algebra import builder as rb
from repro.constraints import (
    ChaseFailure,
    FunctionalDependency,
    InclusionDependency,
    Key,
    chase,
    chase_functional_dependencies,
    satisfies_all,
    violations,
)
from repro.datamodel import Database, Null, Relation
from repro.incomplete import naive_evaluate_direct
from repro.probabilistic import (
    almost_certainly_true_answers,
    conditional_mu,
    conditional_mu_k,
    conditional_mu_profile,
    empirical_mu_limit,
    is_almost_certainly_true,
    mu_k,
    mu_k_profile,
    mu_limit,
)


@pytest.fixture
def ts_database(null_x):
    """T = {1, 2}, S = {⊥}: the conditional-probability example of Section 4.3."""
    return Database.from_dict(
        {"T": (("A",), [(1,), (2,)]), "S": (("A",), [(null_x,)])}
    )


class TestZeroOneLaw:
    def test_naive_answers_are_almost_certainly_true(self, ts_database):
        query = rb.difference(rb.relation("T"), rb.relation("S"))
        naive = naive_evaluate_direct(query, ts_database).rows_set()
        assert naive == {(1,), (2,)}
        for row in naive:
            assert is_almost_certainly_true(query, ts_database, row)
            assert mu_limit(query, ts_database, row) == 1

    def test_non_naive_answers_have_probability_zero(self, rs_database):
        query = rb.intersection(rb.relation("R"), rb.relation("S"))
        assert mu_limit(query, rs_database, (1,)) == 0

    def test_mu_k_converges_to_one(self, ts_database):
        query = rb.difference(rb.relation("T"), rb.relation("S"))
        profile = mu_k_profile(query, ts_database, (1,), [3, 4, 8])
        values = [value for _, value in profile]
        assert values == sorted(values)
        assert values[-1] > Fraction(3, 4)
        assert empirical_mu_limit(query, ts_database, (1,)) > Fraction(1, 2)

    def test_mu_k_for_almost_certainly_false(self, rs_database):
        query = rb.intersection(rb.relation("R"), rb.relation("S"))
        assert mu_k(query, rs_database, (1,), 4) == Fraction(1, 4)

    def test_mu_k_requires_enough_constants(self, ts_database):
        query = rb.relation("T")
        with pytest.raises(ValueError):
            mu_k(query, ts_database, (1,), 1)

    def test_almost_certainly_true_equals_naive(self, ts_database):
        query = rb.difference(rb.relation("T"), rb.relation("S"))
        assert (
            almost_certainly_true_answers(query, ts_database).rows_set()
            == naive_evaluate_direct(query, ts_database).rows_set()
        )


class TestConditionalProbability:
    def test_inclusion_constraint_gives_one_half(self, ts_database):
        """The paper's example: under S ⊆ T the answer {1} has probability 1/2."""
        query = rb.difference(rb.relation("T"), rb.relation("S"))
        ind = InclusionDependency("S", ["A"], "T", ["A"])
        assert conditional_mu(query, [ind], ts_database, (1,)) == Fraction(1, 2)
        profile = conditional_mu_profile(query, [ind], ts_database, (1,), [3, 5, 7])
        assert all(value == Fraction(1, 2) for _, value in profile)

    def test_unsatisfiable_constraints_give_zero(self, ts_database, null_x):
        query = rb.relation("T")
        impossible = InclusionDependency("T", ["A"], "Missing", ["A"])
        db = ts_database.without_relation("S")
        assert conditional_mu_k(query, [impossible], db, (1,), 3) == 0

    def test_fd_only_constraints_use_the_chase(self, null_x):
        db = Database({"R": Relation(("A", "B"), [(1, null_x), (1, 5)])})
        fd = FunctionalDependency("R", ["A"], ["B"])
        query = rb.project(rb.relation("R"), ["B"])
        assert conditional_mu(query, [fd], db, (5,)) == 1
        assert conditional_mu(query, [fd], db, (7,)) == 0

    def test_fd_chase_failure_gives_zero(self):
        db = Database({"R": Relation(("A", "B"), [(1, 2), (1, 3)])})
        fd = FunctionalDependency("R", ["A"], ["B"])
        query = rb.relation("R")
        assert conditional_mu(query, [fd], db, (1, 2)) == 0


class TestDependencies:
    def test_fd_violations(self, null_x):
        db = Database({"R": Relation(("A", "B"), [(1, 2), (1, 3), (2, null_x)])})
        fd = FunctionalDependency("R", ["A"], ["B"])
        assert not fd.holds(db)
        assert len(list(fd.violations(db))) == 1

    def test_key_is_fd_over_all_attributes(self):
        key = Key("R", ["A"], ["A", "B", "C"])
        assert key.lhs == ("A",) and set(key.rhs) == {"B", "C"}

    def test_inclusion_dependency(self, figure1):
        ind = InclusionDependency("Payments", ["oid"], "Orders", ["oid"])
        assert ind.holds(figure1)
        bad = InclusionDependency("Orders", ["oid"], "Payments", ["oid"])
        assert not bad.holds(figure1)
        assert ("o3",) in list(bad.violations(figure1))

    def test_satisfies_all_and_violations(self, figure1):
        constraints = [
            InclusionDependency("Payments", ["oid"], "Orders", ["oid"]),
            FunctionalDependency("Orders", ["oid"], ["price"]),
        ]
        assert satisfies_all(figure1, constraints)
        assert violations(figure1, constraints) == []

    def test_mismatched_ind_sides_rejected(self):
        with pytest.raises(ValueError):
            InclusionDependency("R", ["A", "B"], "S", ["A"])


class TestChase:
    def test_fd_chase_grounds_nulls(self, null_x):
        db = Database({"R": Relation(("A", "B"), [(1, null_x), (1, 5)])})
        chased = chase_functional_dependencies(db, [FunctionalDependency("R", ["A"], ["B"])])
        assert chased["R"].rows_set() == {(1, 5)}
        assert chased.is_complete()

    def test_fd_chase_merges_nulls(self, null_x, null_y):
        db = Database({"R": Relation(("A", "B"), [(1, null_x), (1, null_y)])})
        chased = chase_functional_dependencies(db, [FunctionalDependency("R", ["A"], ["B"])])
        assert len(chased.nulls()) == 1

    def test_fd_chase_failure_on_constant_clash(self):
        db = Database({"R": Relation(("A", "B"), [(1, 2), (1, 3)])})
        with pytest.raises(ChaseFailure):
            chase_functional_dependencies(db, [FunctionalDependency("R", ["A"], ["B"])])

    def test_ind_chase_adds_facts_with_fresh_nulls(self):
        db = Database(
            {
                "Payments": Relation(("cid", "oid"), [("c1", "o9")]),
                "Orders": Relation(("oid", "title"), [("o1", "Book")]),
            }
        )
        result = chase(db, [InclusionDependency("Payments", ["oid"], "Orders", ["oid"])])
        assert result.added_facts == 1
        assert InclusionDependency("Payments", ["oid"], "Orders", ["oid"]).holds(result.database)
        assert len(result.database.nulls()) == 1

    def test_chase_reports_bookkeeping(self, null_x):
        db = Database({"R": Relation(("A", "B"), [(1, null_x), (1, 5)])})
        result = chase(db, [FunctionalDependency("R", ["A"], ["B"])])
        assert result.grounded_nulls == 1
        assert result.merged_nulls == 0
