"""Randomized SQLite-vs-interpreter backend equivalence harness.

The metamorphic property that makes ``backend="auto"`` (SQLite pushdown,
:mod:`repro.exec`) safe to keep on by default: for any (query, database),
evaluating with ``backend="auto"`` must be **result-identical** to
``backend="interpreter"`` —

* through the engine, for every registered strategy (all six), tuple for
  tuple including the certain/possible/certainly-false side relations
  and the per-tuple certainty annotations (interpreter-only strategies
  are covered too: an explicit request must still answer identically and
  record the decision);
* under set and bag semantics (naïve is the bag-capable algebra path);
* on monolithic and sharded databases (the backend resolves inside each
  per-fragment strategy call and the merged result aggregates the
  per-shard decisions).

A coverage floor asserts the SQLite path actually compiled a healthy
share of the generated plans — otherwise the harness silently degrades
into interpreter-vs-interpreter.

Databases are tiny (≤ 2 nulls) so ``exact-certain`` stays computable;
the query generator is shared in shape with
``tests/test_optimizer_equivalence.py`` and covers σ (with ∧/self-
comparisons), π, ρ, ×, ∪, −, ∩, ÷ and ⋉ — ÷ is deliberately kept so the
``auto`` fallback path (Division is not SQL-expressible here) is
exercised inside the identity loop, not just in a dedicated test.

Seed fixed, overridable via ``REPRO_BACKEND_SEED``; case count via
``REPRO_BACKEND_CASES`` (CI runs a second seed).
"""

from __future__ import annotations

import itertools
import os
import random
from collections import Counter

import pytest

from repro import Database, Engine, Null, Relation
from repro.algebra import builder as rb
from repro.algebra.conditions import And, Attr, Eq, Literal, Neq
from repro.engine import EngineError, StrategyNotApplicableError, available_strategies
from repro.sharding import HashPartitioner, ShardedDatabase
from repro.workloads import GeneratorConfig, RelationSpec, generate_database

SEED = int(os.environ.get("REPRO_BACKEND_SEED", "20260808"))
CASES = int(os.environ.get("REPRO_BACKEND_CASES", "80"))


# ----------------------------------------------------------------------
# Random databases: tiny, with a bounded number of nulls
# ----------------------------------------------------------------------
def _build_database(rng: random.Random) -> Database:
    config = GeneratorConfig(
        relations=(
            RelationSpec("R", ("a", "b"), rng.randint(2, 4)),
            RelationSpec("S", ("c", "d"), rng.randint(2, 4)),
            RelationSpec("T", ("e",), rng.randint(1, 3)),
        ),
        domain_size=4,
        null_rate=0.0,
        seed=rng.randrange(1_000_000),
    )
    db = generate_database(config)
    return _inject_k_nulls(db, rng.randint(0, 2), rng.random() < 0.5, rng)


def _inject_k_nulls(db: Database, k: int, repeated: bool, rng: random.Random) -> Database:
    if k == 0:
        return db
    rows_by_relation = {
        name: list(relation.iter_rows_bag()) for name, relation in db.relations()
    }
    positions = [
        (name, i, j)
        for name, rows in rows_by_relation.items()
        for i, row in enumerate(rows)
        for j in range(len(row))
    ]
    chosen = rng.sample(positions, min(k, len(positions)))
    shared = Null(f"b{rng.randrange(1_000_000)}")
    for index, (name, i, j) in enumerate(chosen):
        null = shared if repeated else Null(f"b{rng.randrange(1_000_000)}_{index}")
        row = list(rows_by_relation[name][i])
        row[j] = null
        rows_by_relation[name][i] = tuple(row)
    return Database(
        {
            name: Relation(db[name].attributes, rows)
            for name, rows in rows_by_relation.items()
        }
    )


# ----------------------------------------------------------------------
# Random queries with valid attribute typing
# ----------------------------------------------------------------------
class _QueryGen:
    def __init__(self, rng: random.Random, schema):
        self.rng = rng
        self.schema = schema
        self._fresh = itertools.count()

    def fresh_attr(self) -> str:
        return f"x{next(self._fresh)}"

    def condition(self, attrs):
        rng = self.rng
        left = Attr(rng.choice(attrs))
        roll = rng.random()
        if roll < 0.1:
            right = left
        elif len(attrs) > 1 and roll < 0.45:
            right = Attr(rng.choice(attrs))
        else:
            right = Literal(f"v{rng.randrange(4)}")
        condition = (Eq if rng.random() < 0.7 else Neq)(left, right)
        if rng.random() < 0.3:
            other = Attr(rng.choice(attrs))
            condition = And(condition, Eq(other, Literal(f"v{rng.randrange(4)}")))
        return condition

    def with_arity(self, arity: int):
        rng = self.rng
        name = rng.choice(["R", "S"] if arity == 2 else ["R", "S", "T"])
        plan = rb.relation(name)
        attrs = list(plan.output_attributes(self.schema))
        while len(attrs) < arity:
            plan = rb.product(plan, rb.rename(rb.relation("T"), {"e": self.fresh_attr()}))
            attrs = list(plan.output_attributes(self.schema))
        if len(attrs) > arity:
            keep = rng.sample(attrs, arity)
            rng.shuffle(keep)
            plan = rb.project(plan, keep)
            attrs = keep
        if rng.random() < 0.4:
            plan = rb.select(plan, self.condition(attrs))
        return plan

    def query(self, depth: int):
        rng = self.rng
        if depth <= 0 or rng.random() < 0.25:
            return rb.relation(rng.choice(["R", "S", "T"]))
        child = self.query(depth - 1)
        attrs = list(child.output_attributes(self.schema))
        op = rng.choices(
            ["select", "project", "rename", "product", "union", "difference",
             "intersection", "division", "semijoin"],
            weights=[22, 12, 8, 22, 12, 10, 6, 4, 4],
        )[0]
        if op == "select":
            return rb.select(child, self.condition(attrs))
        if op == "project":
            keep = rng.sample(attrs, rng.randint(1, len(attrs)))
            return rb.project(child, keep)
        if op == "rename":
            renamed = rng.sample(attrs, rng.randint(1, len(attrs)))
            return rb.rename(child, {a: self.fresh_attr() for a in renamed})
        if op == "product":
            right = self.with_arity(rng.choice([1, 2]))
            right_attrs = right.output_attributes(self.schema)
            disjoint = rb.rename(right, {a: self.fresh_attr() for a in right_attrs})
            plan = rb.product(child, disjoint)
            if rng.random() < 0.75:
                left_attr = rng.choice(attrs)
                right_attr = rng.choice(
                    list(disjoint.output_attributes(self.schema))
                )
                plan = rb.select(plan, Eq(Attr(left_attr), Attr(right_attr)))
            return plan
        if op in ("union", "difference", "intersection"):
            right = self.with_arity(len(attrs))
            build = {"union": rb.union, "difference": rb.difference,
                     "intersection": rb.intersection}[op]
            return build(child, right)
        if op == "division" and len(attrs) >= 2:
            divisor = self.with_arity(1)
            divisor_attr = divisor.output_attributes(self.schema)[0]
            return rb.division(child, rb.rename(divisor, {divisor_attr: attrs[-1]}))
        if op == "semijoin":
            right = self.with_arity(1)
            right_attr = right.output_attributes(self.schema)[0]
            return rb.semijoin(
                child, rb.rename(right, {right_attr: rng.choice(attrs)})
            )
        return child


# ----------------------------------------------------------------------
# Result comparison: tuple-for-tuple identity
# ----------------------------------------------------------------------
def _assert_identical(reference, pushed, label: str) -> None:
    assert reference.relation.attributes == pushed.relation.attributes, label
    assert reference.relation.rows_bag() == pushed.relation.rows_bag(), (
        f"{label}: primary answers differ\ninterpreter: "
        f"{reference.relation.sorted_rows()}\nauto:        "
        f"{pushed.relation.sorted_rows()}"
    )
    for side in ("certain", "possible", "certainly_false"):
        a, b = getattr(reference, side), getattr(pushed, side)
        assert (a is None) == (b is None), f"{label}: {side} presence differs"
        if a is not None:
            assert a.rows_set() == b.rows_set(), f"{label}: {side} rows differ"
    ref_annotated = Counter(
        (t.row, t.status, t.multiplicity) for t in reference.tuples
    )
    push_annotated = Counter(
        (t.row, t.status, t.multiplicity) for t in pushed.tuples
    )
    assert ref_annotated == push_annotated, f"{label}: annotations differ"


def _resolved_backend(result) -> str | None:
    note = result.metadata.get("backend")
    return note.get("resolved") if isinstance(note, dict) else None


def _evaluate_both(engine, query, db, label, **kwargs):
    """(interpreter, auto) results, or None when both raise alike."""
    try:
        reference = engine.evaluate(
            query, db, backend="interpreter", use_cache=False, **kwargs
        )
    except (StrategyNotApplicableError, EngineError, ValueError, TypeError) as exc:
        try:
            engine.evaluate(query, db, backend="auto", use_cache=False, **kwargs)
        except type(exc):
            return None
        raise AssertionError(
            f"{label}: the interpreter raised {type(exc).__name__} but the "
            "auto-backend evaluation did not"
        )
    pushed = engine.evaluate(query, db, backend="auto", use_cache=False, **kwargs)
    _assert_identical(reference, pushed, label)
    assert _resolved_backend(reference) == "interpreter", label
    return reference, pushed


def _run_case(engine: Engine, rng: random.Random, case: int) -> Counter:
    db = _build_database(rng)
    gen = _QueryGen(rng, db.schema())
    query = gen.query(rng.randint(1, 3))
    label_base = f"case {case} (seed {SEED})"
    resolved: Counter = Counter()

    for strategy in available_strategies():
        pair = _evaluate_both(
            engine, query, db, f"{label_base}, strategy {strategy}",
            strategy=strategy,
        )
        if pair is not None:
            resolved[(strategy, _resolved_backend(pair[1]))] += 1

    # Bag semantics through the engine (naïve is the bag-capable algebra path).
    pair = _evaluate_both(
        engine, query, db, f"{label_base}, naive (bag)", strategy="naive",
        semantics="bag",
    )
    if pair is not None:
        resolved[("naive-bag", _resolved_backend(pair[1]))] += 1

    # Sharded evaluation: the backend resolves inside each per-fragment
    # strategy call; the merged metadata aggregates the decisions.
    sharded = ShardedDatabase.from_database(
        db, rng.choice([2, 3]), HashPartitioner()
    )
    for strategy in ("naive", "approx-guagliardo16"):
        pair = _evaluate_both(
            engine, query, sharded, f"{label_base}, sharded {strategy}",
            strategy=strategy,
        )
        if pair is not None:
            resolved[("sharded", _resolved_backend(pair[1]))] += 1

    # Tracing observes, never steers (repro.obs): a traced evaluation
    # must be result-identical to the untraced one — same tuples, same
    # annotations, same metadata — except for the exported span tree
    # riding result.metadata["trace"].  Half the cases run the check on
    # the sharded database so SpanContext propagation into shard tasks
    # is inside the randomized loop, not just in a dedicated test.
    target = sharded if rng.random() < 0.5 else db
    strategy = rng.choice(("naive", "approx-guagliardo16"))
    try:
        untraced = engine.evaluate(query, target, strategy=strategy, use_cache=False)
    except (StrategyNotApplicableError, EngineError, ValueError, TypeError):
        untraced = None
    if untraced is not None:
        traced = engine.evaluate(
            query, target, strategy=strategy, use_cache=False, trace=True
        )
        label = f"{label_base}, traced {strategy}"
        _assert_identical(untraced, traced, label)
        assert "trace" not in untraced.metadata, label
        assert traced.metadata.get("trace"), label
        stripped = {k: v for k, v in traced.metadata.items() if k != "trace"}
        assert stripped == untraced.metadata, (
            f"{label}: tracing changed the metadata"
        )
    return resolved


def test_sqlite_matches_interpreter_randomized():
    engine = Engine()
    resolved: Counter = Counter()
    for case in range(CASES):
        rng = random.Random(SEED * 1_000_003 + case)
        resolved += _run_case(engine, rng, case)
    # Coverage floors: the pushdown path must actually run, for the
    # monolithic strategies, under bag semantics, and on shards —
    # otherwise the harness is comparing the interpreter with itself.
    assert resolved[("naive", "sqlite")] >= CASES // 2, resolved
    assert resolved[("naive-bag", "sqlite")] >= CASES // 2, resolved
    assert resolved[("approx-guagliardo16", "sqlite")] >= CASES // 10, resolved
    assert resolved[("sharded", "sqlite")] >= CASES // 4, resolved
    # ...and the fallback path must run too (÷ plans are generated on
    # purpose), so requested-vs-resolved divergence is exercised.
    assert resolved[("naive", "interpreter")] >= 1, resolved


def test_explicit_sqlite_on_interpreter_only_strategy_raises():
    rng = random.Random(SEED)
    db = _build_database(rng)
    engine = Engine()
    for strategy in ("exact-certain", "approx-libkin16", "ctables", "sql-3vl"):
        with pytest.raises(StrategyNotApplicableError, match="backends"):
            engine.evaluate(
                rb.relation("R"), db, strategy=strategy, backend="sqlite",
                use_cache=False,
            )


def test_explicit_sqlite_on_inexpressible_plan_raises():
    rng = random.Random(SEED)
    db = _build_database(rng)
    division = rb.division(
        rb.relation("R"),
        rb.rename(rb.project(rb.relation("T"), ("e",)), {"e": "b"}),
    )
    with pytest.raises(EngineError, match="cannot execute this plan"):
        Engine().evaluate(
            division, db, strategy="naive", backend="sqlite", use_cache=False
        )


def test_auto_fallback_decision_is_recorded():
    rng = random.Random(SEED)
    db = _build_database(rng)
    division = rb.division(
        rb.relation("R"),
        rb.rename(rb.project(rb.relation("T"), ("e",)), {"e": "b"}),
    )
    result = Engine().evaluate(
        division, db, strategy="naive", backend="auto", use_cache=False
    )
    note = result.metadata["backend"]
    assert note["requested"] == "auto"
    assert note["resolved"] == "interpreter"
    assert "Division" in note["reason"]
