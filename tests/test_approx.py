"""Tests for the Figure 2 approximation schemes, bag bounds and quality metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import builder as rb, evaluate, evaluate_bag
from repro.algebra.conditions import Attr, Eq, Literal, Neq, Or
from repro.approx import (
    approximate_multiplicity_bounds,
    compare_answers,
    exact_multiplicity_bounds,
    normalize_for_translation,
    translate_guagliardo16,
    translate_libkin16,
)
from repro.datamodel import Database, Null, Relation, Valuation
from repro.incomplete import (
    certain_answers_with_nulls,
    constant_pool,
    iterate_worlds,
)
from repro.workloads import (
    figure1_database,
    figure1_database_with_null,
    tautology_algebra,
    unpaid_orders_algebra,
)


def _random_database(r_rows, s_rows, null_positions):
    """Small two-relation database with nulls injected at given positions."""
    nulls = [Null(f"h{i}") for i in range(4)]
    r = [
        tuple(nulls[(i + j) % 4] if (0, i, j) in null_positions else v for j, v in enumerate(row))
        for i, row in enumerate(r_rows)
    ]
    s = [
        tuple(nulls[(i + j + 1) % 4] if (1, i, j) in null_positions else v for j, v in enumerate(row))
        for i, row in enumerate(s_rows)
    ]
    return Database({"R": Relation(("A", "B"), r), "S": Relation(("A", "B"), s)})


QUERIES = {
    "difference": lambda: rb.difference(rb.relation("R"), rb.relation("S")),
    "proj_diff": lambda: rb.difference(
        rb.project(rb.relation("R"), ["A"]), rb.project(rb.relation("S"), ["A"])
    ),
    "select_neq": lambda: rb.select(rb.relation("R"), rb.neq("A", 1)),
    "union": lambda: rb.union(rb.relation("R"), rb.relation("S")),
    "product_proj": lambda: rb.project(
        rb.product(
            rb.project(rb.relation("R"), ["A"]),
            rb.rename(rb.project(rb.relation("S"), ["B"]), {"B": "C"}),
        ),
        ["A"],
    ),
    "intersection": lambda: rb.intersection(rb.relation("R"), rb.relation("S")),
}


class TestGuagliardo16:
    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    def test_q_plus_is_sound(self, query_name):
        """Q+(D) ⊆ cert⊥(Q, D) on a database exercising nulls (Theorem 4.7)."""
        null = Null("z")
        db = Database(
            {
                "R": Relation(("A", "B"), [(1, 2), (null, 3)]),
                "S": Relation(("A", "B"), [(1, null), (4, 5)]),
            }
        )
        query = QUERIES[query_name]()
        pair = translate_guagliardo16(query, db.schema())
        certain_plus = evaluate(pair.certain, db).rows_set()
        ground_truth = certain_answers_with_nulls(query, db).rows_set()
        assert certain_plus <= ground_truth

    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    def test_sandwich_property(self, query_name):
        """v(Q+(D)) ⊆ Q(v(D)) ⊆ v(Q?(D)) for every valuation (equation 5)."""
        null = Null("z")
        db = Database(
            {
                "R": Relation(("A", "B"), [(1, 2), (null, 3)]),
                "S": Relation(("A", "B"), [(1, null)]),
            }
        )
        query = QUERIES[query_name]()
        pair = translate_guagliardo16(query, db.schema())
        plus_rows = evaluate(pair.certain, db).rows_set()
        maybe_rows = evaluate(pair.possible, db).rows_set()
        for valuation, world in iterate_worlds(db, constant_pool(db)):
            answer = evaluate(query, world).rows_set()
            assert {valuation.apply_tuple(r) for r in plus_rows} <= answer
            assert answer <= {valuation.apply_tuple(r) for r in maybe_rows}

    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    def test_exact_on_complete_databases(self, query_name):
        db = Database(
            {
                "R": Relation(("A", "B"), [(1, 2), (2, 3)]),
                "S": Relation(("A", "B"), [(1, 2), (4, 5)]),
            }
        )
        query = QUERIES[query_name]()
        pair = translate_guagliardo16(query, db.schema())
        original = evaluate(query, db).rows_set()
        assert evaluate(pair.certain, db).rows_set() == original
        assert evaluate(pair.possible, db).rows_set() == original

    def test_running_example_difference(self, rs_database):
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        pair = translate_guagliardo16(query, rs_database.schema())
        assert evaluate(pair.certain, rs_database).rows_set() == set()
        assert evaluate(pair.possible, rs_database).rows_set() == {(1,)}

    def test_tautology_query_recall_loss(self, figure1_null):
        """The 'oid = o2 OR oid <> o2' query: Q+ finds c1 but misses c2."""
        query = tautology_algebra()
        pair = translate_guagliardo16(query, figure1_null.schema())
        produced = evaluate(pair.certain, figure1_null)
        truth = certain_answers_with_nulls(query, figure1_null)
        quality = compare_answers(produced, truth)
        assert quality.is_sound()
        assert truth.rows_set() == {("c1",), ("c2",)}
        assert produced.rows_set() == {("c1",)}

    def test_unsupported_operator_raises(self, rs_database):
        query = rb.division(rb.relation("R"), rb.relation("S"))
        with pytest.raises(ValueError):
            translate_guagliardo16(query, rs_database.schema())


class TestLibkin16:
    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    def test_qt_is_sound_and_qf_disjoint_from_possible(self, query_name):
        null = Null("z")
        db = Database(
            {
                "R": Relation(("A", "B"), [(1, 2), (null, 3)]),
                "S": Relation(("A", "B"), [(1, null)]),
            }
        )
        query = QUERIES[query_name]()
        pair = translate_libkin16(query, db.schema())
        certainly_true = evaluate(pair.certainly_true, db).rows_set()
        certainly_false = evaluate(pair.certainly_false, db).rows_set()
        ground_truth = certain_answers_with_nulls(query, db).rows_set()
        assert certainly_true <= ground_truth
        # Certainly-false tuples are never answers in any world (4b).
        for valuation, world in iterate_worlds(db, constant_pool(db)):
            answer = evaluate(query, world).rows_set()
            for row in certainly_false:
                assert valuation.apply_tuple(row) not in answer

    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    def test_qt_equals_query_on_complete_databases(self, query_name):
        db = Database(
            {
                "R": Relation(("A", "B"), [(1, 2), (2, 3)]),
                "S": Relation(("A", "B"), [(1, 2)]),
            }
        )
        query = QUERIES[query_name]()
        pair = translate_libkin16(query, db.schema())
        assert evaluate(pair.certainly_true, db).rows_set() == evaluate(query, db).rows_set()

    def test_qt_and_qplus_agree_on_running_example(self, rs_database):
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        qt = translate_libkin16(query, rs_database.schema()).certainly_true
        qplus = translate_guagliardo16(query, rs_database.schema()).certain
        assert evaluate(qt, rs_database).rows_set() == evaluate(qplus, rs_database).rows_set()


class TestNormalisation:
    def test_intersection_normalised_to_difference(self):
        query = rb.intersection(rb.relation("R"), rb.relation("S"))
        normalized = normalize_for_translation(query)
        assert "Intersection" not in str(type(normalized))

    def test_semijoin_rejected_with_guidance(self):
        query = rb.semijoin(rb.relation("R"), rb.relation("S"))
        with pytest.raises(ValueError):
            normalize_for_translation(query)


class TestFigure1Pipeline:
    def test_unpaid_orders_false_negative_detected(self):
        complete = figure1_database()
        with_null = figure1_database_with_null()
        query = unpaid_orders_algebra()
        assert evaluate(query, complete).rows_set() == {("o3",)}
        # Naïve evaluation of the difference now also reports o2 — a false
        # positive, since the null payment may well be for o2.
        assert evaluate(query, with_null).rows_set() == {("o2",), ("o3",)}
        # Nothing is certain, and Q+ correctly returns nothing.
        pair = translate_guagliardo16(query, with_null.schema())
        assert evaluate(pair.certain, with_null).rows_set() == set()
        assert certain_answers_with_nulls(query, with_null).rows_set() == set()
        # But o3 is still possible.
        assert ("o3",) in evaluate(pair.possible, with_null).rows_set()


class TestBagBounds:
    def test_theorem_4_8_bracket(self):
        null = Null("b")
        db = Database(
            {
                "R": Relation(("A",), [(1,), (1,), (null,)]),
                "S": Relation(("A",), [(1,)]),
            }
        )
        query = rb.union(rb.relation("R"), rb.relation("S"))
        exact = exact_multiplicity_bounds(query, db, (1,))
        approx = approximate_multiplicity_bounds(query, db, (1,))
        assert approx.lower <= exact.lower <= approx.upper

    def test_bounds_on_complete_database_collapse(self):
        db = Database({"R": Relation(("A",), [(1,), (1,)]), "S": Relation(("A",), [])})
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        exact = exact_multiplicity_bounds(query, db, (1,))
        assert exact.lower == exact.upper == 2
        approx = approximate_multiplicity_bounds(query, db, (1,))
        assert approx.lower == approx.upper == 2

    @settings(max_examples=20, deadline=None)
    @given(
        r_mult=st.integers(0, 3),
        s_mult=st.integers(0, 2),
        with_null=st.booleans(),
    )
    def test_bag_lower_bound_always_sound(self, r_mult, s_mult, with_null):
        null = Null("bb")
        rows_r = [(1,)] * r_mult + ([(null,)] if with_null else [])
        rows_s = [(1,)] * s_mult
        db = Database({"R": Relation(("A",), rows_r), "S": Relation(("A",), rows_s)})
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        exact = exact_multiplicity_bounds(query, db, (1,))
        approx = approximate_multiplicity_bounds(query, db, (1,))
        assert approx.lower <= exact.lower


class TestQualityMetrics:
    def test_precision_recall_f1(self):
        produced = Relation(("A",), [(1,), (2,)])
        truth = Relation(("A",), [(2,), (3,)])
        quality = compare_answers(produced, truth)
        assert quality.true_positives == 1
        assert quality.false_positives == 1
        assert quality.false_negatives == 1
        assert quality.precision == pytest.approx(0.5)
        assert quality.recall == pytest.approx(0.5)
        assert quality.f1 == pytest.approx(0.5)
        assert not quality.is_sound() and not quality.is_complete()

    def test_empty_cases(self):
        empty = Relation(("A",), [])
        quality = compare_answers(empty, empty)
        assert quality.precision == 1.0 and quality.recall == 1.0
