"""Chaos harness: fault injection must never change *what* is computed.

Each case evaluates a random query over a random tiny database — every
registered strategy, monolithic and sharded — twice: once fault-free
(the reference) and once under a seeded :class:`FaultPlan` injecting
transient shard failures, cache backend outages and SQLite
``OperationalError``\\ s.  Three invariants are enforced:

1. **No request outlives its deadline.**  Every chaotic evaluation runs
   under a ``timeout``; it either returns, or fails with
   :class:`DeadlineExceeded` / a fault-typed error — and its wall clock
   stays within the budget plus bounded slack.
2. **No fault poisons a cache entry.**  After disarming the faults, the
   *same* engine (same caches, same breakers) re-evaluates every query
   and must be tuple-identical to the fault-free reference.
3. **Degradation is sound.**  A result carrying ``metadata["degraded"]``
   guarantees ``"sound-subset"``: its rows (and certain answers) are a
   subset of the fault-free ones.  A chaotic result *without* that
   marker must be tuple-identical to the reference — retries and backend
   failovers are invisible in the answer.

The schedule is deterministic: ``REPRO_CHAOS_SEED`` picks the fault
schedule, ``REPRO_CHAOS_CASES`` the case count, so CI can replay a
failure exactly (crash-kind faults are exercised separately in
``test_resilience.py`` — ``os._exit`` has no place in an equivalence
loop).
"""

from __future__ import annotations

import os
import random
import sqlite3
import time

import pytest

from repro import Engine
from repro.engine import EngineError, StrategyNotApplicableError, available_strategies
from repro.resilience import (
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    InjectedFault,
    RetryPolicy,
    faults_armed,
    reset_breakers,
)
from repro.sharding import HashPartitioner, RoundRobinPartitioner, ShardedDatabase

from test_sharding_equivalence import _assert_identical, _build_database, _QueryGen

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20260808"))
CASES = int(os.environ.get("REPRO_CHAOS_CASES", "25"))

#: Per-evaluation wall-clock budget, and the slack allowed on top of it
#: before invariant 1 counts as violated (scheduler noise, not compute).
TIMEOUT = 20.0
SLACK = 10.0

#: Failures a chaotic run may legitimately surface: the engine's own
#: error (retry exhausted, degrade unavailable, every shard failed), the
#: injected fault itself, or its SQLite disguise.  Anything else — a
#: ``KeyError`` from a half-written cache entry, say — is a real bug.
FAULT_ERRORS = (EngineError, InjectedFault, sqlite3.OperationalError)


@pytest.fixture(autouse=True)
def _clean_breakers():
    reset_breakers()
    yield
    reset_breakers()


def _chaos_plan(rng: random.Random) -> FaultPlan:
    return FaultPlan(
        [
            FaultRule(point="shard.task", probability=0.25, error="transient"),
            FaultRule(point="cache.get", probability=0.2, error="transient"),
            FaultRule(point="cache.put", probability=0.2, error="transient"),
            FaultRule(point="sqlite.run", probability=0.2, error="operational"),
        ],
        seed=rng.randrange(1_000_000),
    )


def _reference_results(engine: Engine, query, db, sharded) -> dict:
    """Fault-free answers per (strategy, target); strategies that refuse
    the query are skipped (the chaotic run must refuse it too)."""
    results: dict = {}
    for strategy in available_strategies():
        for target_name, target in (("mono", db), ("sharded", sharded)):
            try:
                results[strategy, target_name] = engine.evaluate(
                    query, target, strategy=strategy, use_cache=False,
                    executor="serial",
                )
            except (StrategyNotApplicableError, EngineError, ValueError, TypeError):
                results[strategy, target_name] = None
    return results


def _assert_sound_subset(chaotic, reference, label: str) -> None:
    degraded = chaotic.metadata["degraded"]
    assert degraded["guarantee"] == "sound-subset", label
    assert degraded["failed_shards"], label
    assert chaotic.relation.rows_set() <= reference.relation.rows_set(), (
        f"{label}: degraded answer is not a subset\n"
        f"degraded:  {chaotic.relation.sorted_rows()}\n"
        f"reference: {reference.relation.sorted_rows()}"
    )
    for side in ("certain", "possible"):
        a, b = getattr(chaotic, side), getattr(reference, side)
        if a is not None and b is not None and side == "certain":
            assert a.rows_set() <= b.rows_set(), f"{label}: degraded {side}"
    assert chaotic.metadata.get("exact") is not True, label


def _run_case(case: int) -> dict:
    rng = random.Random(SEED * 1_000_003 + case)
    db = _build_database(rng)
    shards = rng.choice([2, 3])
    partitioner = rng.choice([HashPartitioner, RoundRobinPartitioner])()
    sharded = ShardedDatabase.from_database(db, shards, partitioner)
    query = _QueryGen(rng, db.schema()).query(rng.randint(1, 3))
    on_shard_error = rng.choice(["retry", "degrade"])
    retry = RetryPolicy(max_attempts=4, base_delay=0.0, max_delay=0.0, seed=case)
    label_base = f"case {case} (seed {SEED}, shards {shards}, {on_shard_error})"

    # One engine for the whole case: its caches live through the chaos
    # and are interrogated again after the faults are disarmed.
    engine = Engine()
    reference = _reference_results(engine, query, db, sharded)
    stats = {"ok": 0, "degraded": 0, "deadline": 0, "failed": 0}

    with faults_armed(_chaos_plan(rng)):
        for (strategy, target_name), ref in reference.items():
            target = db if target_name == "mono" else sharded
            label = f"{label_base}, {strategy}/{target_name}"
            start = time.monotonic()
            try:
                chaotic = engine.evaluate(
                    query, target, strategy=strategy, use_cache=True,
                    executor="serial", timeout=TIMEOUT,
                    on_shard_error=on_shard_error, retry=retry,
                )
            except DeadlineExceeded:
                stats["deadline"] += 1
                chaotic = None
            except FAULT_ERRORS:
                stats["failed"] += 1
                chaotic = None
            except (StrategyNotApplicableError, ValueError, TypeError):
                # The strategy refuses this query with or without faults.
                assert ref is None, f"{label}: refused only under faults"
                chaotic = None
            elapsed = time.monotonic() - start
            assert elapsed <= TIMEOUT + SLACK, (
                f"{label}: evaluation outlived its deadline ({elapsed:.1f}s)"
            )
            if chaotic is None:
                continue
            assert ref is not None, f"{label}: succeeded only under faults"
            if chaotic.metadata.get("degraded"):
                stats["degraded"] += 1
                _assert_sound_subset(chaotic, ref, label)
            else:
                stats["ok"] += 1
                _assert_identical(ref, chaotic, label)

    # Invariant 2: faults are gone; the engine's caches (fed while the
    # fault plan was live) must still serve fault-free answers.
    for (strategy, target_name), ref in reference.items():
        if ref is None:
            continue
        target = db if target_name == "mono" else sharded
        label = f"{label_base}, {strategy}/{target_name} (post-disarm)"
        replay = engine.evaluate(
            query, target, strategy=strategy, use_cache=True, executor="serial"
        )
        _assert_identical(ref, replay, label)
    return stats


@pytest.mark.timeout(600)
def test_chaos_preserves_answers_and_caches():
    totals = {"ok": 0, "degraded": 0, "deadline": 0, "failed": 0}
    for case in range(CASES):
        for key, value in _run_case(case).items():
            totals[key] += value
    # The schedule must actually bite: plenty of evaluations survive the
    # chaos untouched AND a meaningful number take a fault path.
    assert totals["ok"] >= CASES, totals
    assert totals["degraded"] + totals["failed"] >= CASES // 5, totals
