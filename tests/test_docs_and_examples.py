"""Smoke tests: the documentation files exist and the examples run.

The examples are executed in-process (their ``main()`` functions) on the
smallest configurations, so a broken public API surfaces here as well as
in the unit tests.
"""

from __future__ import annotations

import asyncio
import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))
FAST_EXAMPLES = [
    path
    for path in EXAMPLES
    if path.name
    in {
        "quickstart.py",
        "figure1_false_answers.py",
        "probabilistic_answers.py",
        "sql_three_valued_logic.py",
        "async_compare.py",
        "auto_strategy.py",
    }
]


class TestDocumentation:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_documentation_files_exist_and_are_substantial(self, name):
        path = REPO_ROOT / name
        assert path.exists(), f"{name} is missing"
        assert len(path.read_text().splitlines()) > 20

    def test_readme_mentions_the_paper(self):
        text = (REPO_ROOT / "README.md").read_text()
        assert "Coping with Incomplete Data" in text
        assert "certain answers" in text.lower()

    def test_design_has_experiment_index(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        for experiment in ("E1", "E5", "E8", "E11"):
            assert experiment in text


class TestExamples:
    def test_there_are_at_least_three_examples(self):
        assert len(EXAMPLES) >= 3
        assert any(path.name == "quickstart.py" for path in EXAMPLES)

    @pytest.mark.parametrize("path", FAST_EXAMPLES, ids=lambda p: p.name)
    def test_example_runs(self, path, capsys):
        spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
            outcome = module.main()
            if asyncio.iscoroutine(outcome):
                asyncio.run(outcome)
        finally:
            sys.modules.pop(spec.name, None)
        output = capsys.readouterr().out
        assert output.strip(), f"{path.name} produced no output"
