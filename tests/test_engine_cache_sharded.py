"""Per-shard fingerprints, cache invalidation, and the fingerprint fix.

The sharded evaluation path keys each shard's partial result on the
content fingerprint of exactly the data it read: its own fragments of
the sharded relations plus the full broadcast relations.  These tests
pin the invalidation contract — mutate one shard and only that shard's
partial recomputes — and the hit-rate arithmetic behind it.

They also pin the fingerprint-collision fix these tests surfaced:
:func:`repro.engine.cache.database_fingerprint` used to hash raw
relation names, so a crafted name containing newlines could forge the
boundary between two relations and make different databases collide.
Names are now ``repr``-escaped and every relation is digested
separately.
"""

from __future__ import annotations

import pytest

from repro import Database, Engine, Null, Relation, Session
from repro.algebra import builder as rb
from repro.algebra.conditions import Attr, Eq
from repro.engine import database_fingerprint
from repro.engine.cache import relation_fingerprint
from repro.sharding import HashPartitioner, RoundRobinPartitioner, ShardedDatabase


# ----------------------------------------------------------------------
# Fingerprint fundamentals
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_relation_fingerprint_ignores_insertion_order(self):
        a = Relation(("x", "y"), [(1, 2), (3, 4)])
        b = Relation(("x", "y"), [(3, 4), (1, 2)])
        assert relation_fingerprint(a) == relation_fingerprint(b)

    def test_relation_fingerprint_sees_multiplicities_and_nulls(self):
        once = Relation(("x",), [(1,)])
        twice = Relation(("x",), [(1,), (1,)])
        assert relation_fingerprint(once) != relation_fingerprint(twice)
        null_a = Relation(("x",), [(Null("a"),)])
        null_b = Relation(("x",), [(Null("b"),)])
        assert relation_fingerprint(null_a) != relation_fingerprint(null_b)

    def test_forged_relation_boundary_does_not_collide(self):
        """Regression: a crafted relation name used to replay another
        database's byte stream (names were hashed unescaped)."""
        honest = Database(
            {
                "A": Relation(("a",), [("x",)]),
                "B": Relation(("b",), [("y",)]),
            }
        )
        forged_name = "A:('a',)\n(\"str:'x'\",)*1\nrelation:B"
        forged = Database({forged_name: Relation(("b",), [("y",)])})
        assert database_fingerprint(honest) != database_fingerprint(forged)

    def test_database_fingerprint_unchanged_by_sharding(self):
        db = Database({"R": Relation(("a", "b"), [(1, 2), (3, 4), (5, 6)])})
        sharded = ShardedDatabase.from_database(db, 3)
        assert database_fingerprint(db) == database_fingerprint(sharded)


# ----------------------------------------------------------------------
# Fragment fingerprint caching on ShardedDatabase
# ----------------------------------------------------------------------
def _rs_database() -> Database:
    return Database(
        {
            "R": Relation(("a", "b"), [(i, f"v{i % 3}") for i in range(8)]),
            "S": Relation(("c", "d"), [(f"v{i}", i) for i in range(3)]),
        }
    )


class TestShardedFingerprints:
    def test_fragments_partition_and_fingerprint_distinct_placement(self):
        db = _rs_database()
        sharded = ShardedDatabase.from_database(db, 3, HashPartitioner())
        sharded.verify_fragments()
        fps = [sharded.fragment_fingerprint("R", s) for s in range(3)]
        assert len(set(fps)) == len([f for f in fps])  # placement-sensitive

    def test_add_rows_touches_only_target_shards(self):
        db = _rs_database()
        partitioner = HashPartitioner()
        sharded = ShardedDatabase.from_database(db, 4, partitioner)
        before = {
            (name, s): sharded.fragment_fingerprint(name, s)
            for name in ("R", "S")
            for s in range(4)
        }
        new_row = (99, "v99")
        target = partitioner.shard_of(new_row, 4, ("a", "b"))
        mutated = sharded.add_rows("R", [new_row])
        mutated.verify_fragments()
        for (name, s), fingerprint in before.items():
            if (name, s) == ("R", target):
                assert mutated.fragment_fingerprint(name, s) != fingerprint
            else:
                assert mutated.fragment_fingerprint(name, s) == fingerprint

    def test_with_fragment_rebuilds_coalesced_view(self):
        db = _rs_database()
        sharded = ShardedDatabase.from_database(db, 2, RoundRobinPartitioner())
        fragment = sharded.fragment("S", 0).add_rows([("v9", 9)])
        mutated = sharded.with_fragment("S", 0, fragment)
        mutated.verify_fragments()
        assert ("v9", 9) in mutated["S"]
        assert mutated.fragment_fingerprint("S", 1) == sharded.fragment_fingerprint("S", 1)
        assert mutated.fragment_fingerprint("S", 0) != sharded.fragment_fingerprint("S", 0)

    def test_round_robin_append_repartitions(self):
        db = _rs_database()
        sharded = ShardedDatabase.from_database(db, 3, RoundRobinPartitioner())
        mutated = sharded.add_rows("R", [(50, "v50")])
        mutated.verify_fragments()
        sizes = [len(mutated.fragment("R", s)) for s in range(3)]
        assert max(sizes) - min(sizes) <= 1  # still balanced

    def test_reserved_suffix_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            ShardedDatabase(
                {"R::shard": Relation(("a",), [(1,)])}, shards=2
            )


# ----------------------------------------------------------------------
# Engine-level per-shard cache invalidation
# ----------------------------------------------------------------------
JOIN = rb.project(
    rb.select(
        rb.product(rb.relation("R"), rb.relation("S")),
        Eq(Attr("b"), Attr("c")),
    ),
    ["a", "d"],
)


class TestPartialResultCache:
    def _session(self, shards: int = 4) -> Session:
        return Session(_rs_database(), shards=shards)

    def test_cold_then_warm(self):
        session = self._session()
        first = session.evaluate(JOIN, strategy="naive")
        assert first.metadata["sharding"]["mode"] == "distributed"
        assert first.metadata["sharding"]["partial_cache_hits"] == 0
        assert not first.from_cache
        second = session.evaluate(JOIN, strategy="naive")
        assert second.metadata["sharding"]["partial_cache_hits"] == 4
        assert second.from_cache
        assert second.relation.rows_bag() == first.relation.rows_bag()

    def test_single_shard_mutation_recomputes_one_partial(self):
        session = self._session()
        session.evaluate(JOIN, strategy="naive")
        sharded = session.database
        assert isinstance(sharded, ShardedDatabase)
        new_row = (41, "v1")
        target = sharded.partitioner.shard_of(new_row, 4, ("a", "b"))
        mutated_session = session.with_database(sharded.add_rows("R", [new_row]))

        hits_before = mutated_session.cache_stats.hits
        result = mutated_session.evaluate(JOIN, strategy="naive")
        assert result.metadata["sharding"]["partial_cache_hits"] == 3
        assert mutated_session.cache_stats.hits == hits_before + 3
        # and the answer reflects the mutation
        assert any(row[0] == 41 for row in result.relation.rows_set())
        del target  # placement detail; asserted via the hit count above

    def test_broadcast_mutation_invalidates_every_partial(self):
        session = self._session()
        session.evaluate(JOIN, strategy="naive")
        sharded = session.database
        # S is broadcast in JOIN's shard plan: every partial depends on it.
        mutated_session = session.with_database(
            sharded.add_rows("S", [("v0", 77)])
        )
        result = mutated_session.evaluate(JOIN, strategy="naive")
        assert result.metadata["sharding"]["partial_cache_hits"] == 0

    def test_hit_rate_accounting_across_strategies(self):
        session = self._session(shards=2)
        for _ in range(3):
            session.evaluate(JOIN, strategy="naive")
            session.evaluate(JOIN, strategy="approx-guagliardo16")
        stats = session.cache_stats
        # 2 strategies × 2 shards: 4 cold misses, then 2 warm rounds × 4 hits.
        assert stats.misses == 4
        assert stats.hits == 8
        assert stats.hit_rate == pytest.approx(8 / 12)

    def test_partials_keyed_per_strategy_and_semantics(self):
        session = self._session(shards=2)
        set_result = session.evaluate(JOIN, strategy="naive")
        bag_result = session.evaluate(JOIN, strategy="naive", semantics="bag")
        assert bag_result.metadata["sharding"]["partial_cache_hits"] == 0
        assert set_result.relation.rows_set() == bag_result.relation.rows_set()

    def test_use_cache_false_bypasses_partials(self):
        session = self._session(shards=2)
        session.evaluate(JOIN, strategy="naive")
        result = session.evaluate(JOIN, strategy="naive", use_cache=False)
        assert result.metadata["sharding"]["partial_cache_hits"] == 0
        assert not result.from_cache

    def test_shards_zero_forces_monolithic(self):
        session = self._session(shards=3)
        result = session.evaluate(JOIN, strategy="naive", shards=0)
        assert "sharding" not in result.metadata

    def test_engine_level_sharding_of_plain_database(self):
        engine = Engine(shards=3)
        result = engine.evaluate(JOIN, _rs_database(), strategy="naive")
        assert result.metadata["sharding"]["shards"] == 3
        mono = Engine().evaluate(JOIN, _rs_database(), strategy="naive")
        assert result.relation.rows_bag() == mono.relation.rows_bag()
