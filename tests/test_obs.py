"""The observability layer: tracing, metrics, EXPLAIN, and the server wiring.

Four contracts from ``repro.obs``:

* **Zero cost when disabled** — an untraced evaluation allocates no
  :class:`~repro.obs.Span` objects at all (proved via the span-creation
  hook, not by timing), and ``trace=True`` never changes the answer or
  the rest of the metadata (the randomized half of that property lives
  in ``tests/test_backend_equivalence.py``).
* **Span trees stitch across process pools** — per-shard worker spans
  collected in other processes graft back under the orchestrator's
  fan-out span, pid and all.
* **Metrics are process-wide and cheap** — the registry aggregates
  counters/gauges/histograms from the engine, cache and backend hook
  points; the module-level helpers are no-ops when gated off.
* **The server serves it** — ``GET /metrics`` exposes the registry,
  ``trace`` on a query round-trips the span tree, and the ``/stats`` /
  ``/healthz`` response shapes survived the move of ``ServerMetrics``
  into ``repro.obs.metrics``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import Database, Engine, Relation
from repro.algebra import builder as rb
from repro.engine import Session
from repro.obs import (
    Histogram,
    MetricsRegistry,
    SpanContext,
    add_span_hook,
    current_span,
    export_ndjson,
    metrics_enabled,
    percentile,
    remove_span_hook,
    render_explain,
    set_metrics_enabled,
    span,
    start_trace,
    tracing_active,
)
from repro.obs import metrics as obs_metrics
from repro.server import EvalServer, ServerClient, ServerConfig


@pytest.fixture
def db() -> Database:
    return Database.from_dict(
        {
            "R": (("a", "b"), [(1, 10), (2, 20), (3, 30), (4, 40)]),
            "S": (("b", "c"), [(10, "x"), (20, "y"), (50, "z")]),
        }
    )


QUERY = rb.project(rb.relation("R"), ("a",))


@pytest.fixture
def span_counter():
    created: list = []
    add_span_hook(created.append)
    yield created
    remove_span_hook(created.append)


# ----------------------------------------------------------------------
# Tracing primitives
# ----------------------------------------------------------------------
def test_span_is_noop_singleton_when_untraced():
    assert not tracing_active()
    with span("anything") as s:
        s.incr("rows", 5)
        s.set_attr("k", "v")
    with span("other") as t:
        assert t is s  # the shared no-op instance, no allocation
    assert current_span() is s
    assert SpanContext.capture() is None


def test_span_tree_nests_counts_and_exports():
    with start_trace("root", flavor="test") as root:
        assert tracing_active()
        with span("child") as child:
            child.incr("rows", 3)
            child.add_event("spill", bytes=12)
            with span("grandchild"):
                pass
    exported = root.export()
    assert exported["name"] == "root"
    assert exported["attrs"] == {"flavor": "test"}
    assert exported["wall_ms"] >= 0.0 and exported["cpu_ms"] >= 0.0
    (child_x,) = exported["children"]
    assert child_x["counters"] == {"rows": 3}
    assert child_x["events"][0]["event"] == "spill"
    assert child_x["children"][0]["name"] == "grandchild"

    lines = export_ndjson(exported).splitlines()
    assert len(lines) == 3
    flat = [json.loads(line) for line in lines]
    assert flat[0]["parent"] is None
    assert {node["parent"] for node in flat[1:]} <= {1, 2}


def test_span_records_errors():
    with pytest.raises(ValueError):
        with start_trace("root") as root:
            with span("boom"):
                raise ValueError("nope")
    exported = root.export()
    assert exported["children"][0]["error"] == "ValueError: nope"


def test_span_context_activate_replaces_ambient_trace():
    ctx_holder = {}
    with start_trace("orchestrator") as root:
        ctx = SpanContext.capture()
        assert ctx is not None and ctx.parent_name == "orchestrator"
        with ctx.activate("worker", shard=1) as worker:
            # The worker's tree is fresh — instrumentation lands there,
            # not on the orchestrator's span (no double-recording when
            # the executor shares this process).
            assert current_span() is worker
            current_span().incr("rows", 2)
        ctx_holder["export"] = worker.export()
        root.graft(ctx_holder["export"])
    exported = root.export()
    assert exported["children"][0]["name"] == "worker"
    assert exported["children"][0]["attrs"]["pid"] == os.getpid()
    assert exported["children"][0]["counters"] == {"rows": 2}
    assert "rows" not in (exported.get("counters") or {})


# ----------------------------------------------------------------------
# The zero-cost contract and trace neutrality through the engine
# ----------------------------------------------------------------------
def test_untraced_evaluation_allocates_no_spans(db, span_counter):
    with Engine() as engine:
        engine.evaluate(QUERY, db, strategy="naive", use_cache=False)
        assert span_counter == [], (
            "tracing is off but Span objects were constructed"
        )
        traced = engine.evaluate(
            QUERY, db, strategy="naive", use_cache=False, trace=True
        )
    assert len(span_counter) > 0
    assert traced.metadata["trace"]["name"] == "evaluate"


def test_trace_flag_shares_cache_entries_and_stays_out_of_them(db):
    with Engine() as engine:
        cold = engine.evaluate(QUERY, db, strategy="naive", trace=True)
        assert not cold.from_cache and "trace" in cold.metadata
        warm = engine.evaluate(QUERY, db, strategy="naive")
        # The traced call populated the entry; the untraced call hits it
        # and the stored copy carries no span tree.
        assert warm.from_cache and "trace" not in warm.metadata
        warm_traced = engine.evaluate(QUERY, db, strategy="naive", trace=True)
        assert warm_traced.from_cache and "trace" in warm_traced.metadata
        assert warm_traced.relation.rows_bag() == cold.relation.rows_bag()


def test_span_tree_stitches_across_process_pool_shards(db):
    with Engine() as engine:
        result = engine.evaluate(
            QUERY,
            db,
            strategy="naive",
            shards=2,
            executor="process",
            use_cache=False,
            trace=True,
        )
    trace = result.metadata["trace"]
    fanout = next(c for c in trace["children"] if c["name"] == "shard.fanout")
    shard_spans = [c for c in fanout["children"] if c["name"].startswith("shard[")]
    assert {s["name"] for s in shard_spans} == {"shard[0]", "shard[1]"}
    for shard_span in shard_spans:
        # Collected in a pool worker: the pid attribute proves the span
        # crossed a process boundary and still grafted under the parent.
        assert shard_span["attrs"]["pid"] != os.getpid()
        assert shard_span["wall_ms"] >= 0.0


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_metrics_registry_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.incr("requests", strategy="naive")
    registry.incr("requests", 2, strategy="naive")
    registry.incr("requests", strategy="ctables")
    registry.gauge_set("pool.size", 4)
    for value in range(100):
        registry.observe("latency_ms", float(value))
    assert registry.counter_value("requests", strategy="naive") == 3
    snap = registry.snapshot()
    assert snap["counters"]["requests{strategy=ctables}"] == 1
    assert snap["gauges"]["pool.size"] == 4
    hist = snap["histograms"]["latency_ms"]
    assert hist["count"] == 100
    assert hist["p50"] == pytest.approx(49.5, abs=1.5)
    assert hist["p99"] >= 95.0
    registry.reset()
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_histogram_window_is_bounded():
    histogram = Histogram(window=8)
    for value in range(100):
        histogram.observe(float(value))
    summary = histogram.summary()
    assert summary["count"] == 100  # lifetime count survives the window
    assert summary["p50"] >= 92.0  # only the tail (92..99) is retained
    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)


def test_module_level_metrics_respect_the_gate():
    obs_metrics.reset_metrics()
    assert metrics_enabled()
    obs_metrics.incr("obs.test.counter")
    assert obs_metrics.snapshot()["counters"]["obs.test.counter"] == 1
    set_metrics_enabled(False)
    try:
        obs_metrics.incr("obs.test.counter")
        assert obs_metrics.snapshot()["counters"]["obs.test.counter"] == 1
    finally:
        set_metrics_enabled(True)
    obs_metrics.reset_metrics()


def test_engine_and_cache_hooks_feed_the_global_registry(db):
    obs_metrics.reset_metrics()
    with Engine() as engine:
        engine.evaluate(QUERY, db, strategy="naive")
        engine.evaluate(QUERY, db, strategy="naive")
    snap = obs_metrics.snapshot()
    assert snap["counters"]["engine.evaluations{strategy=naive}"] == 2
    assert snap["counters"]["cache.hits{backend=memory}"] >= 1
    assert snap["counters"]["cache.misses{backend=memory}"] >= 1
    assert any(k.startswith("exec.resolutions") for k in snap["counters"])
    assert snap["histograms"]["engine.elapsed_ms{strategy=naive}"]["count"] == 2
    obs_metrics.reset_metrics()


# ----------------------------------------------------------------------
# EXPLAIN
# ----------------------------------------------------------------------
def test_result_explain_renders_sections_and_trace(db):
    with Engine() as engine:
        untraced = engine.evaluate(QUERY, db, strategy="auto", use_cache=False)
        text = untraced.explain()
        assert "EXPLAIN strategy=" in text
        assert "plan:" in text and "backend:" in text
        assert "trace: none collected" in text

        traced = engine.evaluate(
            QUERY, db, strategy="auto", use_cache=False, trace=True
        )
        text = render_explain(traced)
        assert "trace:" in text and "evaluate" in text
        assert "ms wall" in text and "ms cpu" in text


def test_session_explain_profiles_a_sharded_auto_query(db):
    with Session(db, shards=2) as session:
        text = session.explain(QUERY, strategy="auto", use_cache=False)
    for needle in ("EXPLAIN", "plan:", "sharding:", "shard.fanout",
                   "shard[0]", "shard[1]", "shard.merge"):
        assert needle in text, f"missing {needle!r} in:\n{text}"


def test_describe_reports_observability(db):
    with Engine(trace=True) as engine:
        described = engine.describe()
    obs = described["observability"]
    assert obs["trace_default"] is True
    assert obs["metrics_enabled"] is True
    assert set(obs["metrics"]) == {"counters", "gauges", "histograms"}
    assert isinstance(obs["breakers"], dict)
    assert described["defaults"]["trace"] is True


# ----------------------------------------------------------------------
# Server wiring
# ----------------------------------------------------------------------
@pytest.fixture
def client(db):
    with EvalServer(
        ServerConfig(pool="thread", max_workers=2, datasets={"toy": db})
    ) as server:
        host, port = server.address
        with ServerClient(host, port, tenant="alice") as c:
            yield c


def test_server_metrics_endpoint_and_trace_flag(client):
    traced = client.query(
        "SELECT a FROM R", db="toy", strategy="naive", use_cache=False, trace=True
    )
    trace = traced["result"]["metadata"]["trace"]
    assert trace["name"] == "evaluate"
    assert any(c["name"] == "normalize" for c in trace["children"])

    untraced = client.query(
        "SELECT a FROM R", db="toy", strategy="naive", use_cache=False
    )
    assert "trace" not in untraced["result"]["metadata"]
    assert untraced["result"]["rows"] == traced["result"]["rows"]

    metrics = client._request("GET", "/metrics")
    assert set(metrics) == {"counters", "gauges", "histograms"}
    assert any(k.startswith("engine.evaluations") for k in metrics["counters"])


def test_server_stats_and_healthz_shapes_survived_the_metrics_move(client):
    """Compatibility pin: relocating ``ServerMetrics`` into
    ``repro.obs.metrics`` must not change a byte of the response shapes
    dashboards scrape."""
    client.query("SELECT a FROM R", db="toy")
    client.query("SELECT a FROM R", db="toy")

    health = client.healthz()
    assert set(health) == {"status", "breakers"}
    assert health["status"] == "ok"

    stats = client.stats()
    for key in ("uptime", "requests", "completed", "qps", "tenants",
                "strategies", "cache", "latency", "queue_wait", "execution"):
        assert key in stats, f"/stats lost the {key!r} field"
    assert set(stats["cache"]) == {"hits", "misses", "hit_rate"}
    for section in ("latency", "queue_wait", "execution"):
        assert {"p50", "p99"} <= set(stats[section])
    assert stats["completed"] >= 2
