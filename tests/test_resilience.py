"""Unit and integration pins for :mod:`repro.resilience`.

Covers the four primitives (deadlines, retry policies, circuit
breakers, fault injection) in isolation, then their threading through
the engine: ``timeout=`` aborts long evaluations with
:class:`DeadlineExceeded`, ``on_shard_error="degrade"`` returns the
surviving shards' sound subset for monotone fragments (and refuses for
non-monotone plans), transient shard faults are retried with the count
in ``result.metadata["resilience"]``, the per-``(strategy, backend)``
breaker trips ``backend="auto"`` over to the interpreter and recovers
through a half-open probe, and the server maps a blown ``timeout_ms``
to HTTP 504 while ``/healthz`` exposes breaker snapshots.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro import Database, Engine
from repro.algebra import builder as rb
from repro.algebra.conditions import Attr, Eq
from repro.engine import EngineError
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    TransientFault,
    active_deadline,
    breaker_for,
    deadline_scope,
    faults_armed,
    reset_breakers,
    resolve_deadline,
    resolve_retry,
)


@pytest.fixture(autouse=True)
def _clean_breakers():
    reset_breakers()
    yield
    reset_breakers()


def _database() -> Database:
    return Database.from_dict(
        {
            "R": (("a", "b"), [(i, i + 1) for i in range(12)]),
            "S": (("c",), [(i,) for i in range(0, 12, 2)]),
        }
    )


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
def test_deadline_expiry_check_and_remaining():
    deadline = Deadline.after(60.0)
    assert not deadline.expired
    assert 0.0 < deadline.remaining() <= 60.0
    expired = Deadline.after(0.0)
    assert expired.expired
    with pytest.raises(DeadlineExceeded, match="deadline"):
        expired.check("unit test")


def test_deadline_is_picklable_and_a_timeout_error():
    deadline = Deadline.after(5.0)
    clone = pickle.loads(pickle.dumps(deadline))
    assert clone == deadline
    assert issubclass(DeadlineExceeded, TimeoutError)
    assert not issubclass(DeadlineExceeded, EngineError)


def test_deadline_scope_nesting_keeps_the_tighter_budget():
    outer = Deadline.after(60.0)
    inner = Deadline.after(1.0)
    with deadline_scope(outer):
        assert active_deadline() == outer
        with deadline_scope(inner):
            assert active_deadline().remaining() <= 1.0
        assert active_deadline() == outer
    assert active_deadline() is None


def test_deadline_ticked_aborts_enumeration():
    deadline = Deadline.after(0.0)
    with pytest.raises(DeadlineExceeded):
        list(deadline.ticked(iter(range(10_000)), every=1))


def test_resolve_deadline_accepts_seconds_and_passthrough():
    assert resolve_deadline(None, None) is None
    deadline = resolve_deadline(2.0, None)
    assert isinstance(deadline, Deadline)
    assert resolve_deadline(deadline, None) is deadline


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_policy_classification():
    policy = RetryPolicy(max_attempts=3)
    assert policy.is_retryable(TransientFault("x"))
    assert policy.is_retryable(ConnectionResetError())
    import sqlite3

    assert policy.is_retryable(sqlite3.OperationalError("locked"))
    assert not policy.is_retryable(ValueError("x"))
    # DeadlineExceeded subclasses TimeoutError/OSError but must never
    # be retried: the budget is gone.
    assert not policy.is_retryable(DeadlineExceeded("over"))


def test_retry_delays_are_deterministic_and_capped():
    policy = RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=0.2, seed=7)
    delays = [policy.delay(attempt) for attempt in range(1, 5)]
    assert delays == [policy.delay(a) for a in range(1, 5)]
    assert all(0.0 <= d <= 0.2 * 1.5 for d in delays)


def test_retry_call_retries_transients_then_succeeds():
    policy = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise TransientFault("not yet")
        return "done"

    result, retries = policy.call(flaky, sleep=lambda _: None)
    assert result == "done"
    assert retries == 2


def test_resolve_retry_contract():
    assert resolve_retry(False) is None
    assert isinstance(resolve_retry(True), RetryPolicy)
    policy = RetryPolicy(max_attempts=9)
    assert resolve_retry(policy) is policy
    with pytest.raises(TypeError):
        resolve_retry(42)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
def test_breaker_trips_cools_down_and_recovers_via_half_open_probe():
    clock = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=2, cooldown=10.0, clock=lambda: clock[0]
    )
    assert breaker.allow()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    clock[0] = 11.0
    assert breaker.state == "half-open"
    assert breaker.allow()  # the single probe slot
    assert not breaker.allow()  # a second concurrent probe is refused
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.snapshot()["trips"] == 1


def test_breaker_half_open_failure_reopens():
    clock = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=1, cooldown=5.0, clock=lambda: clock[0]
    )
    breaker.record_failure()
    clock[0] = 6.0
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.snapshot()["trips"] == 2


def test_breaker_release_probe_does_not_leak_the_slot():
    clock = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=1, cooldown=5.0, clock=lambda: clock[0]
    )
    breaker.record_failure()
    clock[0] = 6.0
    assert breaker.allow()
    breaker.release_probe()  # e.g. a capability miss: no health signal
    assert breaker.state == "half-open"
    assert breaker.allow()  # the slot came back


def test_breaker_registry_is_shared_per_pair():
    a = breaker_for("naive", "sqlite")
    assert breaker_for("naive", "sqlite") is a
    assert breaker_for("guagliardo16", "sqlite") is not a


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
def test_fault_plan_is_deterministic_per_seed():
    rule = FaultRule(point="x", probability=0.5)
    decisions_a = [
        FaultPlan([rule], seed=3).decide("x", {}) is not None for _ in range(1)
    ]
    plan_a = FaultPlan([rule], seed=3)
    plan_b = FaultPlan([rule], seed=3)
    seq_a = [plan_a.decide("x", {}) is not None for _ in range(50)]
    seq_b = [plan_b.decide("x", {}) is not None for _ in range(50)]
    assert seq_a == seq_b
    plan_c = FaultPlan([rule], seed=4)
    seq_c = [plan_c.decide("x", {}) is not None for _ in range(50)]
    assert seq_a != seq_c
    assert decisions_a  # seed 3's first draw, pinned by determinism


def test_fault_plan_where_and_max_fires_and_json_round_trip():
    rule = FaultRule(
        point="shard.*", probability=1.0, where={"shard": 0}, max_fires=1
    )
    plan = FaultPlan([rule], seed=1)
    assert plan.decide("shard.task", {"shard": 1}) is None
    assert plan.decide("shard.task", {"shard": 0}) is rule
    assert plan.decide("shard.task", {"shard": 0}) is None  # exhausted
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.seed == plan.seed
    assert clone.rules[0].where == {"shard": 0}


# ----------------------------------------------------------------------
# Engine integration: deadlines
# ----------------------------------------------------------------------
def test_engine_timeout_raises_deadline_exceeded():
    db = _database()
    plan = rb.select(rb.relation("R"), Eq(Attr("a"), Attr("a")))
    engine = Engine()
    with pytest.raises(DeadlineExceeded):
        engine.evaluate(plan, db, timeout=Deadline.after(0.0), use_cache=False)
    # The same call with room to breathe succeeds.
    result = engine.evaluate(plan, db, timeout=30.0, use_cache=False)
    assert len(result.relation) == 12


def test_compare_shares_one_deadline():
    db = _database()
    plan = rb.relation("R")
    engine = Engine()
    with pytest.raises(DeadlineExceeded):
        engine.compare(plan, db, timeout=Deadline.after(0.0), use_cache=False)


def test_session_and_engine_accept_default_timeout():
    engine = Engine(timeout=30.0, on_shard_error="degrade", retry=True)
    described = engine.describe()["defaults"]
    assert described["timeout"] == 30.0
    assert described["on_shard_error"] == "degrade"
    with pytest.raises(EngineError):
        Engine(on_shard_error="explode")


def test_deadline_never_poisons_the_cache():
    db = _database()
    plan = rb.relation("R")
    engine = Engine()
    with pytest.raises(DeadlineExceeded):
        engine.evaluate(plan, db, timeout=Deadline.after(0.0))
    result = engine.evaluate(plan, db)
    assert not result.from_cache  # the aborted run cached nothing
    assert len(result.relation) == 12


# ----------------------------------------------------------------------
# Engine integration: shard retry and degrade
# ----------------------------------------------------------------------
def _cq_plan():
    return rb.project(
        rb.select(rb.relation("R"), Eq(Attr("a"), Attr("a"))), ["a"]
    )


def test_transient_shard_fault_is_retried_and_counted():
    db = _database()
    plan = _cq_plan()
    engine = Engine(shards=2, executor="serial")
    fault = FaultPlan(
        [FaultRule(point="shard.task", probability=1.0, max_fires=1)], seed=0
    )
    reference = engine.evaluate(plan, db, use_cache=False)
    with faults_armed(fault):
        result = engine.evaluate(
            plan,
            db,
            use_cache=False,
            on_shard_error="retry",
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0),
        )
    assert result.metadata["resilience"]["retries"] == 1
    assert result.relation.rows_bag() == reference.relation.rows_bag()


def test_degrade_returns_sound_subset_with_metadata():
    db = _database()
    plan = _cq_plan()
    engine = Engine(shards=2, executor="serial")
    reference = engine.evaluate(plan, db, use_cache=False)
    fault = FaultPlan(
        [
            FaultRule(
                point="shard.task",
                probability=1.0,
                error="fatal",
                where={"shard": 0},
            )
        ],
        seed=0,
    )
    with faults_armed(fault):
        result = engine.evaluate(
            plan, db, use_cache=False, on_shard_error="degrade", retry=False
        )
    degraded = result.metadata["degraded"]
    assert degraded["failed_shards"] == [0]
    assert degraded["guarantee"] == "sound-subset"
    assert result.certain.rows_set() <= reference.certain.rows_set()
    assert result.metadata.get("exact") is not True


def test_degrade_refuses_non_monotone_fragments():
    # σ_{a<b}(R) distributes over shards but classifies as FO (order
    # comparison), so degradation has no soundness guarantee there.
    from repro.algebra.conditions import Lt

    db = _database()
    plan = rb.select(rb.relation("R"), Lt(Attr("a"), Attr("b")))
    engine = Engine(shards=2, executor="serial")
    fault = FaultPlan(
        [FaultRule(point="shard.task", probability=1.0, error="fatal")], seed=0
    )
    with faults_armed(fault):
        with pytest.raises(EngineError, match="not monotone"):
            engine.evaluate(
                plan, db, use_cache=False, on_shard_error="degrade", retry=False
            )


def test_every_shard_failing_raises_even_under_degrade():
    db = _database()
    plan = _cq_plan()
    engine = Engine(shards=2, executor="serial")
    fault = FaultPlan(
        [FaultRule(point="shard.task", probability=1.0, error="fatal")], seed=0
    )
    with faults_armed(fault):
        with pytest.raises(EngineError, match="every shard failed"):
            engine.evaluate(
                plan, db, use_cache=False, on_shard_error="degrade", retry=False
            )


# ----------------------------------------------------------------------
# Circuit breaker through the auto backend
# ----------------------------------------------------------------------
@pytest.mark.timeout(60)
def test_breaker_trips_auto_to_interpreter_and_recovers():
    db = _database()
    plan = rb.select(rb.relation("R"), Eq(Attr("a"), Attr("a")))
    clock = [0.0]
    breaker = breaker_for(
        "naive", "sqlite", failure_threshold=2, cooldown=30.0, clock=lambda: clock[0]
    )
    engine = Engine()
    fault = FaultPlan(
        [FaultRule(point="sqlite.run", probability=1.0, error="operational")],
        seed=0,
    )
    with faults_armed(fault):
        for _ in range(2):
            result = engine.evaluate(
                plan, db, strategy="naive", backend="auto", use_cache=False
            )
            assert result.metadata["backend"]["resolved"] == "interpreter"
    assert breaker.state == "open"
    # While open, auto never touches SQLite — no faults needed to pass.
    result = engine.evaluate(
        plan, db, strategy="naive", backend="auto", use_cache=False
    )
    assert "circuit breaker is open" in result.metadata["backend"]["reason"]
    # After the cool-down, the half-open probe succeeds and closes it.
    clock[0] = 31.0
    result = engine.evaluate(
        plan, db, strategy="naive", backend="auto", use_cache=False
    )
    assert result.metadata["backend"]["resolved"] == "sqlite"
    assert breaker.state == "closed"
    assert breaker.snapshot()["trips"] == 1


# ----------------------------------------------------------------------
# Server: timeout_ms → 504, /healthz breakers
# ----------------------------------------------------------------------
@pytest.mark.timeout(120)
def test_server_timeout_ms_maps_to_504_and_healthz_exposes_breakers():
    from repro.server import serve
    from repro.server.client import ServerClient, ServerTimeoutError

    db = _database()
    with serve(pool="thread", datasets={"toy": db}) as server:
        host, port = server.address
        with ServerClient(host, port) as client:
            ok = client.query("SELECT a FROM R", db="toy", timeout_ms=30_000)
            assert ok["result"]["strategy"]
            with pytest.raises(ServerTimeoutError):
                client.query(
                    "SELECT r1.a FROM R r1, R r2, R r3 WHERE r1.a = r3.b",
                    db="toy",
                    strategy="exact-certain",
                    timeout_ms=0.001,
                    use_cache=False,
                )
            health = client.healthz()
            assert health["status"] == "ok"
            assert isinstance(health["breakers"], dict)
            outcomes = client.stats()["requests"]
            assert outcomes.get("deadline") == 1
