"""Unit tests for the plan optimizer and its physical operators.

The randomized end-to-end guarantees live in
``tests/test_optimizer_equivalence.py``; this file pins the individual
rewrite rules, the per-condition-mode soundness gating, the physical
evaluator nodes (hash equi-join, constrained domain enumeration), the
``Dom^k`` size guard, and the satellite fast paths on ``Relation``.
"""

from __future__ import annotations

import pytest

from repro import Database, Engine, Null, Relation
from repro.algebra import (
    ConstrainedDomainRelation,
    DOMAIN_ENUMERATION_LIMIT,
    EquiJoin,
    OPTIMIZER_RULES,
    builder as rb,
    optimize_plan,
    walk,
)
from repro.algebra import ast as ra
from repro.algebra.conditions import And, Attr, Eq, IsConst, Literal, Neq
from repro.algebra.evaluator import Evaluator
from repro.algebra.optimize import rename_condition, split_conjuncts
from repro.engine import EngineError


@pytest.fixture
def db():
    return Database(
        {
            "R": Relation(("a", "b"), [(1, "x"), (2, "y"), (Null("n1"), "z")]),
            "S": Relation(("c", "d"), [(1, "p"), (3, "q"), (Null("n1"), "r")]),
        }
    )


# ----------------------------------------------------------------------
# Rule table hygiene
# ----------------------------------------------------------------------
def test_every_rule_declares_modes_and_phase():
    assert OPTIMIZER_RULES
    for rule in OPTIMIZER_RULES:
        assert rule.modes <= {"naive", "3vl"} and rule.modes, rule.name
        assert rule.phase in ("logical", "physical"), rule.name
        assert rule.description


def test_exactly_the_null_sensitive_rule_is_naive_only():
    naive_only = {r.name for r in OPTIMIZER_RULES if r.modes == {"naive"}}
    assert naive_only == {"trivial-self-equality"}


# ----------------------------------------------------------------------
# Logical rewrites
# ----------------------------------------------------------------------
def test_selection_over_product_becomes_equijoin(db):
    query = rb.select(
        rb.product(rb.relation("R"), rb.relation("S")),
        And(Eq(Attr("a"), Attr("c")), Neq(Attr("b"), Literal("y"))),
    )
    optimized = optimize_plan(query, db.schema())
    joins = [node for node in walk(optimized) if isinstance(node, EquiJoin)]
    assert len(joins) == 1
    assert joins[0].pairs == (("a", "c"),)
    # The per-side conjunct was pushed below the join, not left above it.
    assert not any(
        isinstance(node, ra.Product) for node in walk(optimized)
    ), "the cartesian product must be gone"


def test_equality_pairs_merge_across_stacked_selections(db):
    query = rb.select(
        rb.select(
            rb.product(rb.relation("R"), rb.relation("S")), Eq(Attr("a"), Attr("c"))
        ),
        Eq(Attr("b"), Attr("d")),
    )
    optimized = optimize_plan(query, db.schema())
    joins = [node for node in walk(optimized) if isinstance(node, EquiJoin)]
    assert len(joins) == 1
    assert set(joins[0].pairs) == {("a", "c"), ("b", "d")}


def test_selection_pushes_through_union_with_positional_renaming(db):
    # Right child uses different attribute names; the pushed condition
    # must be renamed positionally.
    query = rb.select(
        rb.union(rb.relation("R"), rb.relation("S")), Eq(Attr("a"), Literal(1))
    )
    optimized = optimize_plan(query, db.schema())
    union = next(node for node in walk(optimized) if isinstance(node, ra.Union))
    right = union.right
    assert isinstance(right, ra.Selection)
    assert right.condition == Eq(Attr("c"), Literal(1))
    for mode in ("naive", "3vl"):
        plain = Evaluator(condition_mode=mode).evaluate(query, db)
        fast = Evaluator(condition_mode=mode, optimize=True).evaluate(query, db)
        assert plain == fast


def test_projection_prunes_product_columns(db):
    query = rb.project(rb.product(rb.relation("R"), rb.relation("S")), ["a", "d"])
    optimized = optimize_plan(query, db.schema())
    product = next(node for node in walk(optimized) if isinstance(node, ra.Product))
    assert isinstance(product.left, ra.Projection)
    assert product.left.attributes == ("a",)
    assert isinstance(product.right, ra.Projection)
    assert product.right.attributes == ("d",)
    assert Evaluator().evaluate(query, db) == Evaluator(optimize=True).evaluate(
        query, db
    )


def test_self_equality_dropped_only_in_naive_mode(db):
    query = rb.select(rb.relation("R"), Eq(Attr("a"), Attr("a")))
    assert optimize_plan(query, db.schema(), condition_mode="naive") == rb.relation("R")
    still_selected = optimize_plan(query, db.schema(), condition_mode="3vl")
    assert any(isinstance(node, ra.Selection) for node in walk(still_selected))
    # And the 3VL semantics really differ: the null row must be filtered.
    kept = Evaluator(condition_mode="3vl", optimize=True).evaluate(query, db)
    assert kept.rows_set() == {(1, "x"), (2, "y")}


def test_selection_over_domain_is_constrained(db):
    query = rb.select(
        rb.dom(["_d1", "_d2"]),
        And(Eq(Attr("_d1"), Attr("_d2")), Eq(Attr("_d1"), Literal(1))),
    )
    optimized = optimize_plan(query, db.schema())
    assert isinstance(optimized, ConstrainedDomainRelation)
    assert optimized.groups == (("_d1", "_d2"),)
    assert optimized.bindings == (("_d1", 1),)
    for mode in ("naive", "3vl"):
        plain = Evaluator(condition_mode=mode).evaluate(query, db)
        fast = Evaluator(condition_mode=mode, optimize=True).evaluate(query, db)
        assert plain == fast


def test_malformed_plans_keep_raising_the_same_error(db):
    # Overlapping product attributes: the optimizer must not mask the error.
    bad = rb.select(
        rb.product(rb.relation("R"), rb.relation("R")), Eq(Attr("a"), Literal(1))
    )
    with pytest.raises(ValueError, match="overlapping"):
        Evaluator().evaluate(bad, db)
    with pytest.raises(ValueError, match="overlapping"):
        Evaluator(optimize=True).evaluate(bad, db)
    # A plan whose attribute computation fails outright is returned as-is.
    missing = rb.select(rb.relation("Nope"), Eq(Attr("a"), Literal(1)))
    assert optimize_plan(missing, db.schema()) == missing
    # Invalid attribute references must not be silently "repaired" by
    # pushing them below a rename (or collapsing a broken projection):
    # the optimized plan must raise the same KeyError as the original.
    stale_condition = rb.select(
        rb.rename(rb.relation("R"), {"a": "c"}), Eq(Attr("a"), Literal(1))
    )
    stale_projection = rb.project(rb.rename(rb.relation("R"), {"a": "c"}), ["a"])
    broken_inner = rb.project(rb.project(rb.relation("R"), ["a", "zzz"]), ["a"])
    for plan in (stale_condition, stale_projection, broken_inner):
        with pytest.raises(KeyError):
            Evaluator().evaluate(plan, db)
        with pytest.raises(KeyError):
            Evaluator(optimize=True).evaluate(plan, db)


def test_vacuous_rename_entries_do_not_break_pushdown(db):
    # Rename treats a mapping entry whose old name is absent from the
    # child as a no-op; the pushdown rules must not invert such entries
    # into references to nonexistent attributes.
    vacuous = rb.rename(rb.relation("R"), {"zz": "a"})  # no-op: R has no 'zz'
    for plan in (
        rb.select(vacuous, Eq(Attr("a"), Literal(1))),
        rb.project(vacuous, ["a"]),
        rb.select(rb.rename(rb.relation("R"), {"zz": "q", "a": "c"}), Eq("c", 1)),
    ):
        plain = Evaluator().evaluate(plan, db)
        fast = Evaluator(optimize=True).evaluate(plan, db)
        assert plain == fast, plan


def test_physical_false_restricts_to_logical_rules(db):
    query = rb.select(
        rb.product(rb.relation("R"), rb.relation("S")), Eq(Attr("a"), Attr("c"))
    )
    optimized = optimize_plan(query, db.schema(), physical=False)
    assert not any(isinstance(node, EquiJoin) for node in walk(optimized))
    assert any(isinstance(node, ra.Product) for node in walk(optimized))


def test_split_and_rename_condition_helpers():
    condition = And(Eq(Attr("a"), Literal(1)), And(IsConst("b"), Neq("a", "b")))
    parts = split_conjuncts(condition)
    assert len(parts) == 3
    renamed = rename_condition(condition, {"a": "x"})
    assert "x" in str(renamed) and "a" not in str(renamed).replace("x", "")


# ----------------------------------------------------------------------
# Physical operators
# ----------------------------------------------------------------------
def test_equijoin_matches_selected_product_in_both_modes(db):
    join = EquiJoin(rb.relation("R"), rb.relation("S"), [("a", "c")])
    reference = rb.select(
        rb.product(rb.relation("R"), rb.relation("S")), Eq(Attr("a"), Attr("c"))
    )
    for mode in ("naive", "3vl"):
        for bag in (False, True):
            evaluator = Evaluator(condition_mode=mode, bag=bag)
            assert evaluator.evaluate(join, db) == evaluator.evaluate(reference, db), (
                mode,
                bag,
            )


def test_equijoin_null_keys_join_naively_but_not_in_3vl(db):
    join = EquiJoin(rb.relation("R"), rb.relation("S"), [("a", "c")])
    naive_rows = Evaluator(condition_mode="naive").evaluate(join, db).rows_set()
    assert (Null("n1"), "z", Null("n1"), "r") in naive_rows
    tvl_rows = Evaluator(condition_mode="3vl").evaluate(join, db).rows_set()
    assert all(row[0] != Null("n1") for row in tvl_rows)


def test_equijoin_multiplicities_multiply():
    db = Database(
        {
            "A": Relation(("x",), multiplicities={(1,): 2, (2,): 1}),
            "B": Relation(("y",), multiplicities={(1,): 3}),
        }
    )
    join = EquiJoin(rb.relation("A"), rb.relation("B"), [("x", "y")])
    result = Evaluator(bag=True).evaluate(join, db)
    assert result.multiplicity((1, 1)) == 6
    assert len(result) == 1


def test_domain_enumeration_guard_raises_engine_error():
    rows = [(f"v{i}",) for i in range(40)]
    db = Database({"T": Relation(("e",), rows)})
    big = rb.dom(5)  # 40^5 > 2_000_000
    assert 40**5 > DOMAIN_ENUMERATION_LIMIT
    with pytest.raises(EngineError, match="Dom\\^5"):
        Evaluator().evaluate(big, db)
    # A selective condition pushed into the domain keeps it evaluable.
    constrained = rb.select(
        big, Eq(Attr(big.attributes[0]), Literal("v0"))
    )
    for i in range(1, 5):
        constrained = rb.select(
            constrained, Eq(Attr(big.attributes[i]), Literal("v1"))
        )
    result = Evaluator(optimize=True).evaluate(constrained, db)
    assert result.rows_set() == {("v0", "v1", "v1", "v1", "v1")}


def test_subplan_memoization_shares_identical_subtrees(db):
    calls = []

    class CountingEvaluator(Evaluator):
        def _eval_Product(self, query, database, schema):
            calls.append(query)
            return super()._eval_Product(query, database, schema)

    shared = rb.product(rb.relation("R"), rb.rename(rb.relation("S"), {"c": "c2", "d": "d2"}))
    query = rb.union(shared, shared)
    CountingEvaluator().evaluate(query, db)
    assert len(calls) == 1  # second occurrence served from the memo

    # Across evaluate() calls on the same database too (the Qt/Qf shape).
    evaluator = CountingEvaluator()
    evaluator.evaluate(shared, db)
    evaluator.evaluate(rb.project(shared, ["a"]), db)
    assert len(calls) == 2  # one per fresh evaluator, not per occurrence


# ----------------------------------------------------------------------
# Relation satellites
# ----------------------------------------------------------------------
def test_attribute_index_is_precomputed_and_keeps_keyerror():
    relation = Relation(("a", "b", "c"), [(1, 2, 3)])
    assert relation.attribute_index("c") == 2
    with pytest.raises(KeyError):
        relation.attribute_index("missing")


def test_distinct_is_a_noop_on_already_distinct_relations():
    relation = Relation(("a",), [(1,), (2,)])
    assert relation.distinct() is relation
    bag = Relation(("a",), multiplicities={(1,): 3})
    collapsed = bag.distinct()
    assert collapsed is not bag
    assert collapsed.multiplicity((1,)) == 1
    # The collapsed relation knows it is distinct: no second copy.
    assert collapsed.distinct() is collapsed


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
def test_engine_cache_keys_include_the_optimize_setting(db):
    engine = Engine()
    query = rb.select(
        rb.product(rb.relation("R"), rb.relation("S")), Eq(Attr("a"), Attr("c"))
    )
    first = engine.evaluate(query, db, strategy="naive")
    assert not first.from_cache
    assert engine.evaluate(query, db, strategy="naive").from_cache
    unoptimized = engine.evaluate(query, db, strategy="naive", optimize=False)
    assert not unoptimized.from_cache  # different key, no aliasing
    assert unoptimized.relation == first.relation


def test_engine_optimize_default_can_be_disabled(db):
    engine = Engine(optimize=False)
    assert engine.default_optimize is False


def test_compare_accepts_per_strategy_optimize_override(db):
    engine = Engine()
    query = rb.select(
        rb.product(rb.relation("R"), rb.relation("S")), Eq(Attr("a"), Attr("c"))
    )
    results = engine.compare(
        query,
        db,
        strategies=("naive", "approx-guagliardo16"),
        options={"naive": {"optimize": False}},
        use_cache=False,
    )
    assert set(results) == {"naive", "approx-guagliardo16"}
    # And the async twin takes the same shape.
    import asyncio

    from repro import AsyncEngine

    async def go():
        async with AsyncEngine(engine=engine, pool="serial") as aengine:
            return await aengine.compare(
                query,
                db,
                strategies=("naive",),
                options={"naive": {"optimize": False}},
                use_cache=False,
            )

    async_results = asyncio.run(go())
    assert async_results["naive"].relation == results["naive"].relation


def test_physical_rules_are_mode_gated_through_the_table(db, monkeypatch):
    # The physical phase consults the same per-mode rule table as the
    # logical fixpoint: un-declaring a mode disables the transform.
    import repro.algebra.optimize as optmod

    gated = tuple(
        optmod.Rule(r.name, r.description, frozenset({"3vl"}), r.phase, r.fn)
        if r.name == "hash-equijoin"
        else r
        for r in optmod.OPTIMIZER_RULES
    )
    monkeypatch.setattr(optmod, "OPTIMIZER_RULES", gated)
    optmod.clear_optimize_memo()
    query = rb.select(
        rb.product(rb.relation("R"), rb.relation("S")), Eq(Attr("a"), Attr("c"))
    )
    naive_plan = optimize_plan(query, db.schema(), condition_mode="naive")
    assert not any(isinstance(node, EquiJoin) for node in walk(naive_plan))
    tvl_plan = optimize_plan(query, db.schema(), condition_mode="3vl")
    assert any(isinstance(node, EquiJoin) for node in walk(tvl_plan))
    optmod.clear_optimize_memo()


def test_unsupporting_strategies_do_not_receive_the_option(db):
    from repro.engine.registry import get_strategy

    assert get_strategy("sql-3vl").supports_optimize is False
    engine = Engine()
    # Must not raise "does not understand options ['optimize']".
    result = engine.evaluate(
        "SELECT a FROM R WHERE a = 1", db, strategy="sql-3vl", optimize=True
    )
    assert result.relation.rows_set() == {(1,)}
