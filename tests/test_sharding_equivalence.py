"""Randomized shard-vs-monolith equivalence and soundness harness.

The metamorphic property that makes the sharding refactor safe: for any
(query, database, shard count, partitioner), evaluating on a
:class:`~repro.sharding.ShardedDatabase` must be **result-identical** to
monolithic evaluation for every registered strategy — tuple for tuple,
including the certain/possible side relations and the per-tuple
annotations.  Whether the engine distributed the plan or coalesced it is
an implementation detail recorded in ``metadata["sharding"]``.

On top of equivalence, the paper's soundness chain must keep holding
under sharding::

    Q+  ⊆  cert⊥  ⊆  naive          (and Qt ⊆ cert⊥, ctables ⊆ cert⊥,
    cert⊥ ⊆ Q?)

The databases are deliberately tiny (≤ 2 nulls) so the exact certain
answers stay computable; the query generator covers σ, π, ρ, ×, ∪, −,
∩, ÷ and ⋉, which exercises both the distributed path and the coalesced
fallback.

The seed is fixed (overridable via ``REPRO_SHARDING_SEED``; case count
via ``REPRO_SHARDING_CASES``) so CI runs are reproducible.
"""

from __future__ import annotations

import itertools
import os
import random
from collections import Counter

from repro import Database, Engine, Null, Relation
from repro.algebra import builder as rb
from repro.algebra.conditions import Attr, Eq, Literal, Neq
from repro.engine import EngineError, StrategyNotApplicableError, available_strategies
from repro.sharding import HashPartitioner, RoundRobinPartitioner, ShardedDatabase
from repro.workloads import GeneratorConfig, RelationSpec, generate_database

SEED = int(os.environ.get("REPRO_SHARDING_SEED", "20260728"))
CASES = int(os.environ.get("REPRO_SHARDING_CASES", "200"))

PARTITIONERS = (
    lambda: HashPartitioner(),
    lambda: RoundRobinPartitioner(),
)


# ----------------------------------------------------------------------
# Random databases: tiny, with a bounded number of nulls
# ----------------------------------------------------------------------
def _build_database(rng: random.Random) -> Database:
    config = GeneratorConfig(
        relations=(
            RelationSpec("R", ("a", "b"), rng.randint(2, 4)),
            RelationSpec("S", ("c", "d"), rng.randint(2, 4)),
            RelationSpec("T", ("e",), rng.randint(1, 3)),
        ),
        domain_size=4,
        null_rate=0.0,
        seed=rng.randrange(1_000_000),
    )
    db = generate_database(config)
    return _inject_k_nulls(db, rng.randint(0, 2), rng.random() < 0.5, rng)


def _inject_k_nulls(db: Database, k: int, repeated: bool, rng: random.Random) -> Database:
    """Replace exactly ``k`` value occurrences with nulls."""
    if k == 0:
        return db
    rows_by_relation = {
        name: list(relation.iter_rows_bag()) for name, relation in db.relations()
    }
    positions = [
        (name, i, j)
        for name, rows in rows_by_relation.items()
        for i, row in enumerate(rows)
        for j in range(len(row))
    ]
    chosen = rng.sample(positions, min(k, len(positions)))
    shared = Null(f"h{rng.randrange(1_000_000)}")
    for index, (name, i, j) in enumerate(chosen):
        null = shared if repeated else Null(f"h{rng.randrange(1_000_000)}_{index}")
        row = list(rows_by_relation[name][i])
        row[j] = null
        rows_by_relation[name][i] = tuple(row)
    return Database(
        {
            name: Relation(db[name].attributes, rows)
            for name, rows in rows_by_relation.items()
        }
    )


# ----------------------------------------------------------------------
# Random queries with valid attribute typing
# ----------------------------------------------------------------------
class _QueryGen:
    def __init__(self, rng: random.Random, schema):
        self.rng = rng
        self.schema = schema
        self._fresh = itertools.count()

    def fresh_attr(self) -> str:
        return f"x{next(self._fresh)}"

    def condition(self, attrs):
        rng = self.rng
        left = Attr(rng.choice(attrs))
        if len(attrs) > 1 and rng.random() < 0.4:
            right = Attr(rng.choice(attrs))
        else:
            right = Literal(f"v{rng.randrange(4)}")
        return (Eq if rng.random() < 0.7 else Neq)(left, right)

    def with_arity(self, arity: int):
        """A small plan with exactly ``arity`` output attributes."""
        rng = self.rng
        name = rng.choice(["R", "S"] if arity == 2 else ["R", "S", "T"])
        plan = rb.relation(name)
        attrs = list(plan.output_attributes(self.schema))
        if len(attrs) > arity:
            keep = rng.sample(attrs, arity)
            rng.shuffle(keep)
            plan = rb.project(plan, keep)
            attrs = keep
        if rng.random() < 0.4:
            plan = rb.select(plan, self.condition(attrs))
        return plan

    def query(self, depth: int):
        rng = self.rng
        if depth <= 0 or rng.random() < 0.25:
            return rb.relation(rng.choice(["R", "S", "T"]))
        child = self.query(depth - 1)
        attrs = list(child.output_attributes(self.schema))
        op = rng.choices(
            ["select", "project", "rename", "product", "union", "difference",
             "intersection", "division", "semijoin"],
            weights=[22, 14, 8, 14, 12, 10, 8, 6, 6],
        )[0]
        if op == "select":
            return rb.select(child, self.condition(attrs))
        if op == "project":
            keep = rng.sample(attrs, rng.randint(1, len(attrs)))
            return rb.project(child, keep)
        if op == "rename":
            renamed = rng.sample(attrs, rng.randint(1, len(attrs)))
            return rb.rename(child, {a: self.fresh_attr() for a in renamed})
        if op == "product":
            right = self.with_arity(rng.choice([1, 2]))
            right_attrs = right.output_attributes(self.schema)
            disjoint = rb.rename(
                right, {a: self.fresh_attr() for a in right_attrs}
            )
            return rb.product(child, disjoint)
        if op in ("union", "difference", "intersection"):
            right = self.with_arity(len(attrs))
            build = {"union": rb.union, "difference": rb.difference,
                     "intersection": rb.intersection}[op]
            return build(child, right)
        if op == "division" and len(attrs) >= 2:
            divisor = self.with_arity(1)
            divisor_attr = divisor.output_attributes(self.schema)[0]
            return rb.division(
                child, rb.rename(divisor, {divisor_attr: attrs[-1]})
            )
        if op == "semijoin":
            right = self.with_arity(1)
            right_attr = right.output_attributes(self.schema)[0]
            return rb.semijoin(
                child, rb.rename(right, {right_attr: rng.choice(attrs)})
            )
        return child


# ----------------------------------------------------------------------
# Result comparison: tuple-for-tuple identity
# ----------------------------------------------------------------------
def _assert_identical(mono, shard, label: str) -> None:
    assert mono.relation.attributes == shard.relation.attributes, label
    assert mono.relation.rows_bag() == shard.relation.rows_bag(), (
        f"{label}: primary answers differ\nmono:  {mono.relation.sorted_rows()}"
        f"\nshard: {shard.relation.sorted_rows()}"
    )
    for side in ("certain", "possible", "certainly_false"):
        a, b = getattr(mono, side), getattr(shard, side)
        assert (a is None) == (b is None), f"{label}: {side} presence differs"
        if a is not None:
            assert a.rows_set() == b.rows_set(), f"{label}: {side} rows differ"
    mono_annotated = Counter((t.row, t.status, t.multiplicity) for t in mono.tuples)
    shard_annotated = Counter((t.row, t.status, t.multiplicity) for t in shard.tuples)
    assert mono_annotated == shard_annotated, f"{label}: annotations differ"


def _uses_operators(query, names) -> bool:
    from repro.algebra import ast as ra

    return any(type(node).__name__ in names for node in ra.walk(query))


def _run_case(engine: Engine, rng: random.Random, case: int) -> dict:
    db = _build_database(rng)
    shards = rng.choice([1, 2, 3, 4])
    partitioner = rng.choice(PARTITIONERS)()
    sharded = ShardedDatabase.from_database(db, shards, partitioner)
    sharded.verify_fragments()
    assert sharded == db  # coalesced view is content-identical

    gen = _QueryGen(rng, db.schema())
    query = gen.query(rng.randint(1, 3))
    executor = rng.choice(["serial", "thread"])
    label_base = f"case {case} (seed {SEED}, shards {shards}, {partitioner.name})"

    results: dict = {}
    modes: dict = {}
    for strategy in available_strategies():
        label = f"{label_base}, strategy {strategy}"
        try:
            mono = engine.evaluate(query, db, strategy=strategy, use_cache=False)
        except (StrategyNotApplicableError, EngineError, ValueError, TypeError) as exc:
            try:
                engine.evaluate(
                    query, sharded, strategy=strategy, use_cache=False,
                    executor=executor,
                )
            except type(exc):
                continue
            raise AssertionError(
                f"{label}: monolithic raised {type(exc).__name__} but the "
                "sharded evaluation did not"
            )
        shard = engine.evaluate(
            query, sharded, strategy=strategy, use_cache=False, executor=executor
        )
        _assert_identical(mono, shard, label)
        results[strategy] = (mono, shard)
        modes[strategy] = shard.metadata["sharding"]["mode"]

    # Bag semantics exercises its own lineage rules (no ∩ on the
    # lineage, bag-additive merge) — check multiplicities too.
    label = f"{label_base}, strategy naive (bag)"
    try:
        mono = engine.evaluate(
            query, db, strategy="naive", semantics="bag", use_cache=False
        )
    except (StrategyNotApplicableError, EngineError, ValueError, TypeError) as exc:
        try:
            engine.evaluate(
                query, sharded, strategy="naive", semantics="bag",
                use_cache=False, executor=executor,
            )
        except type(exc):
            mono = None
        else:
            raise AssertionError(f"{label}: only monolithic raised")
    if mono is not None:
        shard = engine.evaluate(
            query, sharded, strategy="naive", semantics="bag",
            use_cache=False, executor=executor,
        )
        _assert_identical(mono, shard, label)
        modes["naive-bag"] = shard.metadata["sharding"]["mode"]

    _assert_soundness_chain(results, query, label_base)
    return modes


def _assert_soundness_chain(results: dict, query, label: str) -> None:
    """Q+ ⊆ cert⊥ ⊆ naive (and Qt ⊆ cert⊥, ctables ⊆ cert⊥, cert⊥ ⊆ Q?),
    for the monolithic *and* the sharded results."""
    if "exact-certain" not in results:
        return
    for which in (0, 1):  # 0 = monolithic, 1 = sharded
        cert = results["exact-certain"][which].relation.rows_set()
        if "approx-guagliardo16" in results:
            guag = results["approx-guagliardo16"][which]
            assert guag.certain.rows_set() <= cert, f"{label}: Q+ ⊄ cert"
            assert cert <= guag.possible.rows_set(), f"{label}: cert ⊄ Q?"
        if "approx-libkin16" in results:
            qt = results["approx-libkin16"][which].certain.rows_set()
            assert qt <= cert, f"{label}: Qt ⊄ cert"
        if "ctables" in results:
            ct = results["ctables"][which].certain.rows_set()
            assert ct <= cert, f"{label}: ctables certain ⊄ cert"
        if "naive" in results:
            naive = results["naive"][which].relation.rows_set()
            assert cert <= naive, f"{label}: cert ⊄ naive"


def test_sharded_equals_monolithic_randomized():
    engine = Engine()
    distributed = 0
    coalesced = 0
    for case in range(CASES):
        rng = random.Random(SEED * 1_000_003 + case)
        modes = _run_case(engine, rng, case)
        for mode in modes.values():
            if mode == "distributed":
                distributed += 1
            else:
                coalesced += 1
    # The generator must exercise both paths heavily, otherwise the
    # harness silently stops guarding the interesting code.
    assert distributed >= CASES // 4, (distributed, coalesced)
    assert coalesced >= CASES // 4, (distributed, coalesced)


def test_sharded_equals_monolithic_process_executor():
    """A few cases through the process pool (expensive; kept small)."""
    engine = Engine()
    for case in range(3):
        rng = random.Random(SEED * 7_919 + case)
        db = _build_database(rng)
        sharded = ShardedDatabase.from_database(db, 3, HashPartitioner())
        gen = _QueryGen(rng, db.schema())
        query = rb.select(
            rb.product(
                rb.relation("R"),
                rb.rename(rb.relation("S"), {"c": "c2", "d": "d2"}),
            ),
            Eq(Attr("a"), Attr("c2")),
        )
        mono = engine.evaluate(query, db, strategy="naive", use_cache=False)
        shard = engine.evaluate(
            query, sharded, strategy="naive", use_cache=False, executor="process"
        )
        assert shard.metadata["sharding"]["mode"] == "distributed"
        _assert_identical(mono, shard, f"process case {case}")


def test_natural_join_and_semijoin_distribute_on_the_left():
    """NaturalJoin/SemiJoin are on the naïve lineage allowlist; pin the
    rewrite with shared-attribute schemas the random generator avoids."""
    db = Database(
        {
            "R": Relation(("a", "b"), [(i, f"v{i % 3}") for i in range(7)]),
            "S": Relation(("b", "c"), [(f"v{i}", 10 + i) for i in range(3)]),
        }
    )
    sharded = ShardedDatabase.from_database(db, 3, HashPartitioner())
    engine = Engine()
    for query in (
        rb.natural_join(rb.relation("R"), rb.relation("S")),
        rb.semijoin(rb.relation("R"), rb.relation("S")),
        rb.project(rb.natural_join(rb.relation("R"), rb.relation("S")), ["a", "c"]),
    ):
        for semantics in ("set", "bag"):
            mono = engine.evaluate(
                query, db, strategy="naive", semantics=semantics, use_cache=False
            )
            shard = engine.evaluate(
                query, sharded, strategy="naive", semantics=semantics,
                use_cache=False,
            )
            assert shard.metadata["sharding"]["mode"] == "distributed"
            assert shard.metadata["sharding"]["sharded_relations"] == ["R"]
            assert shard.metadata["sharding"]["broadcast_relations"] == ["S"]
            _assert_identical(mono, shard, f"{type(query).__name__} ({semantics})")


def test_sql_frontend_equivalence_under_sharding():
    """SQL strings (compilable fragment) through sharded evaluation."""
    from repro.workloads import figure1_database_with_null

    db = figure1_database_with_null()
    sharded = ShardedDatabase.from_database(db, 2, RoundRobinPartitioner())
    engine = Engine()
    sql = "SELECT cid FROM Payments WHERE oid = 'o1'"
    for strategy in ("sql-3vl", "naive", "approx-guagliardo16"):
        mono = engine.evaluate(sql, db, strategy=strategy, use_cache=False)
        shard = engine.evaluate(sql, sharded, strategy=strategy, use_cache=False)
        _assert_identical(mono, shard, f"sql via {strategy}")
    # the algebra-executing strategies distribute the compiled plan
    assert (
        engine.evaluate(sql, sharded, strategy="naive", use_cache=False)
        .metadata["sharding"]["mode"]
        == "distributed"
    )
