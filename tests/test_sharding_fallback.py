"""The coalesced fallback: non-distributive operators on sharded data.

Difference, division and the anti-semijoins do not distribute over
horizontal fragments (a fragment cannot know which of its rows survive
subtraction of rows held elsewhere), and several strategies'
correctness arguments need the whole database.  In both situations the
engine must *coalesce*: evaluate monolithically on the union view —
silently correct, never silently wrong.

These are regression tests pinned to the paper's Figure 1 cases, whose
certain answers are established in Section 1 and asserted by the seed
integration tests; sharding must not move any of them.
"""

from __future__ import annotations

import pytest

from repro import Database, Engine, Relation, Session
from repro.algebra import builder as rb
from repro.sharding import (
    HashPartitioner,
    NonDistributableError,
    RoundRobinPartitioner,
    ShardedDatabase,
    shard_plan,
)
from repro.sharding.planner import NAIVE_LINEAGE_OPS, TRANSLATION_LINEAGE_OPS
from repro.workloads import (
    figure1_database_with_null,
    tautology_algebra,
    unpaid_orders_algebra,
)
from repro.workloads.figure1 import customers_without_paid_order_algebra


@pytest.fixture(params=[2, 3], ids=["2-shards", "3-shards"])
def figure1_sharded(request) -> ShardedDatabase:
    return ShardedDatabase.from_database(
        figure1_database_with_null(), request.param, RoundRobinPartitioner()
    )


ALGEBRA_STRATEGIES = ("naive", "exact-certain", "approx-libkin16",
                     "approx-guagliardo16", "ctables")

# The Figure 2a translation materialises Dom^k for the arity-5 join of
# the customers query (the E5 blow-up, ~20 s) — skip that combination.
CHEAP_STRATEGIES = tuple(s for s in ALGEBRA_STRATEGIES if s != "approx-libkin16")


class TestPlannerRejections:
    def test_difference_is_non_distributive(self):
        with pytest.raises(NonDistributableError, match="Difference"):
            shard_plan(unpaid_orders_algebra(), NAIVE_LINEAGE_OPS)

    def test_division_is_non_distributive(self):
        query = rb.division(rb.relation("R"), rb.relation("S"))
        with pytest.raises(NonDistributableError, match="Division"):
            shard_plan(query, NAIVE_LINEAGE_OPS)

    def test_intersection_allowed_for_naive_but_not_translations(self):
        query = rb.intersection(rb.relation("R"), rb.relation("S"))
        plan = shard_plan(query, NAIVE_LINEAGE_OPS)
        # only the left side is partitioned; the right is broadcast
        assert plan.sharded_relations == ("R",)
        assert plan.broadcast_relations == ("S",)
        with pytest.raises(NonDistributableError, match="Intersection"):
            shard_plan(query, TRANSLATION_LINEAGE_OPS)

    def test_domain_relation_cannot_be_partitioned(self):
        with pytest.raises(NonDistributableError, match="Dom"):
            shard_plan(rb.dom(2), NAIVE_LINEAGE_OPS)

    def test_difference_in_broadcast_position_is_fine(self):
        """q_nonlocal-shaped plans distribute: the − sits off-lineage."""
        right = rb.rename(
            rb.difference(
                rb.project(rb.relation("S"), ["c"]),
                rb.project(rb.relation("T"), ["c"]),
            ),
            {"c": "c2"},
        )
        plan = shard_plan(rb.product(rb.relation("R"), right), NAIVE_LINEAGE_OPS)
        assert plan.sharded_relations == ("R",)
        assert set(plan.broadcast_relations) == {"S", "T"}


class TestFigure1UnderSharding:
    """Section 1's certain answers, evaluated on sharded data."""

    def test_unpaid_orders_certain_answers_stay_empty(self, figure1_sharded):
        engine = Engine()
        query = unpaid_orders_algebra()
        for strategy in ("exact-certain", "approx-guagliardo16", "approx-libkin16"):
            result = engine.evaluate(query, figure1_sharded, strategy=strategy)
            assert result.metadata["sharding"]["mode"] == "coalesced"
            assert result.certain.rows_set() == set(), strategy

    def test_unpaid_orders_naive_coalesces_to_monolithic(self, figure1_sharded):
        engine = Engine()
        query = unpaid_orders_algebra()
        result = engine.evaluate(query, figure1_sharded, strategy="naive")
        assert result.metadata["sharding"]["mode"] == "coalesced"
        assert result.relation.rows_set() == {("o2",), ("o3",)}

    def test_customers_without_paid_order_never_reports_c2(self, figure1_sharded):
        engine = Engine()
        query = customers_without_paid_order_algebra()
        for strategy in CHEAP_STRATEGIES:
            result = engine.evaluate(query, figure1_sharded, strategy=strategy)
            assert ("c2",) not in result.certain_rows(), strategy

    def test_tautology_distributes_and_keeps_certainty_gap(self, figure1_sharded):
        """σ with a negated condition on the lineage *does* distribute,
        and the Q+ ⊂ cert gap of Section 1 is preserved."""
        engine = Engine()
        query = tautology_algebra()
        plus = engine.evaluate(query, figure1_sharded, strategy="approx-guagliardo16")
        assert plus.metadata["sharding"]["mode"] == "distributed"
        assert plus.certain.rows_set() == {("c1",)}
        assert plus.possible.rows_set() == {("c1",), ("c2",)}
        cert = engine.evaluate(query, figure1_sharded, strategy="exact-certain")
        assert cert.metadata["sharding"]["mode"] == "coalesced"
        assert cert.relation.rows_set() == {("c1",), ("c2",)}

    def test_every_strategy_matches_monolithic_on_figure1(self, figure1_sharded):
        engine = Engine()
        plain = figure1_database_with_null()
        for query, strategies in (
            (unpaid_orders_algebra(), ALGEBRA_STRATEGIES),
            (customers_without_paid_order_algebra(), CHEAP_STRATEGIES),
            (tautology_algebra(), ALGEBRA_STRATEGIES),
        ):
            for strategy in strategies:
                mono = engine.evaluate(query, plain, strategy=strategy, use_cache=False)
                shard = engine.evaluate(
                    query, figure1_sharded, strategy=strategy, use_cache=False
                )
                assert mono.relation.rows_set() == shard.relation.rows_set()
                assert mono.certain_rows() == shard.certain_rows()
                assert mono.possible_rows() == shard.possible_rows()


class TestDivisionUnderSharding:
    def test_division_coalesces_and_stays_correct(self):
        db = Database(
            {
                "R": Relation(("a", "b"), [(1, "x"), (1, "y"), (2, "x")]),
                "S": Relation(("b",), [("x",), ("y",)]),
            }
        )
        sharded = ShardedDatabase.from_database(db, 2, HashPartitioner())
        query = rb.division(rb.relation("R"), rb.relation("S"))
        session = Session(sharded)
        naive = session.evaluate(query, strategy="naive")
        assert naive.metadata["sharding"]["mode"] == "coalesced"
        assert naive.relation.rows_set() == {(1,)}
        # complete database: naïve division is exact, certain answers agree
        cert = session.evaluate(query, strategy="exact-certain")
        assert cert.relation.rows_set() == {(1,)}
