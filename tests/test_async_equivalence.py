"""Randomized async-vs-sync equivalence harness.

The property that makes :class:`~repro.engine.aio.AsyncEngine` safe to
use interchangeably with :class:`~repro.engine.Engine`: for any (query,
database) pair and every registered strategy, the async engine must
return **identical results** — tuple for tuple, including the
certain/possible side relations, per-tuple annotations and bag
multiplicities — whether the run is monolithic or sharded, and whichever
worker pool carries it.  Only ``elapsed`` (worker-measured) and the
``metadata["sharding"]["executor"]`` note may differ.

Three layers:

* a fixed-seed random sweep (databases with ≤ 2 marked nulls, random
  σ/π/ρ/×/∪/−/∩ plans) over all six strategies in set semantics plus
  naïve under bags, on the thread pool;
* the same sweep through the *sharded* path (async executor hop vs sync
  monolithic evaluation);
* the Figure 1 cases through a real **process pool**, which additionally
  exercises pickling of every task shape (SQL AST, algebra plan) across
  the worker boundary.

Seed and case count are overridable via ``REPRO_ASYNC_SEED`` /
``REPRO_ASYNC_CASES`` so CI can add a second randomized run.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import random
from collections import Counter

from repro import AsyncEngine, Database, Engine, Null, Relation
from repro.algebra import builder as rb
from repro.algebra.conditions import Attr, Eq, Literal, Neq
from repro.engine import EngineError, StrategyNotApplicableError, available_strategies
from repro.sharding import ShardedDatabase
from repro.workloads import (
    GeneratorConfig,
    RelationSpec,
    figure1_cases,
    figure1_database_with_null,
    generate_database,
)

SEED = int(os.environ.get("REPRO_ASYNC_SEED", "20260728"))
CASES = int(os.environ.get("REPRO_ASYNC_CASES", "20"))


# ----------------------------------------------------------------------
# Random databases and queries (compact twin of the sharding harness)
# ----------------------------------------------------------------------
def _build_database(rng: random.Random) -> Database:
    config = GeneratorConfig(
        relations=(
            RelationSpec("R", ("a", "b"), rng.randint(2, 4)),
            RelationSpec("S", ("c", "d"), rng.randint(2, 4)),
            RelationSpec("T", ("e",), rng.randint(1, 3)),
        ),
        domain_size=4,
        null_rate=0.0,
        seed=rng.randrange(1_000_000),
    )
    db = generate_database(config)
    nulls = rng.randint(0, 2)
    if not nulls:
        return db
    rows_by_relation = {
        name: list(relation.iter_rows_bag()) for name, relation in db.relations()
    }
    positions = [
        (name, i, j)
        for name, rows in rows_by_relation.items()
        for i, row in enumerate(rows)
        for j in range(len(row))
    ]
    for index, (name, i, j) in enumerate(
        rng.sample(positions, min(nulls, len(positions)))
    ):
        row = list(rows_by_relation[name][i])
        row[j] = Null(f"n{rng.randrange(1_000_000)}_{index}")
        rows_by_relation[name][i] = tuple(row)
    return Database(
        {
            name: Relation(db[name].attributes, rows)
            for name, rows in rows_by_relation.items()
        }
    )


class _QueryGen:
    def __init__(self, rng: random.Random, schema):
        self.rng = rng
        self.schema = schema
        self._fresh = itertools.count()

    def condition(self, attrs):
        rng = self.rng
        left = Attr(rng.choice(attrs))
        if len(attrs) > 1 and rng.random() < 0.4:
            right = Attr(rng.choice(attrs))
        else:
            right = Literal(f"v{rng.randrange(4)}")
        return (Eq if rng.random() < 0.7 else Neq)(left, right)

    def leaf(self, arity: int):
        rng = self.rng
        name = rng.choice(["R", "S"] if arity == 2 else ["R", "S", "T"])
        plan = rb.relation(name)
        attrs = list(plan.output_attributes(self.schema))
        if len(attrs) > arity:
            keep = rng.sample(attrs, arity)
            plan = rb.project(plan, keep)
        return plan

    def query(self, depth: int):
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            return rb.relation(rng.choice(["R", "S", "T"]))
        child = self.query(depth - 1)
        attrs = list(child.output_attributes(self.schema))
        op = rng.choices(
            ["select", "project", "rename", "product", "union", "difference",
             "intersection"],
            weights=[24, 16, 8, 14, 14, 12, 12],
        )[0]
        if op == "select":
            return rb.select(child, self.condition(attrs))
        if op == "project":
            keep = rng.sample(attrs, rng.randint(1, len(attrs)))
            return rb.project(child, keep)
        if op == "rename":
            renamed = rng.sample(attrs, rng.randint(1, len(attrs)))
            return rb.rename(
                child, {a: f"x{next(self._fresh)}" for a in renamed}
            )
        if op == "product":
            right = self.leaf(self.rng.choice([1, 2]))
            right_attrs = right.output_attributes(self.schema)
            return rb.product(
                child,
                rb.rename(right, {a: f"x{next(self._fresh)}" for a in right_attrs}),
            )
        build = {"union": rb.union, "difference": rb.difference,
                 "intersection": rb.intersection}[op]
        return build(child, self.leaf(len(attrs)))


# ----------------------------------------------------------------------
# Tuple-for-tuple identity
# ----------------------------------------------------------------------
def _assert_identical(sync_result, async_result, label: str) -> None:
    assert sync_result.relation.attributes == async_result.relation.attributes, label
    assert sync_result.relation.rows_bag() == async_result.relation.rows_bag(), (
        f"{label}: primary answers differ"
        f"\nsync:  {sync_result.relation.sorted_rows()}"
        f"\nasync: {async_result.relation.sorted_rows()}"
    )
    for side in ("certain", "possible", "certainly_false"):
        a, b = getattr(sync_result, side), getattr(async_result, side)
        assert (a is None) == (b is None), f"{label}: {side} presence differs"
        if a is not None:
            assert a.rows_set() == b.rows_set(), f"{label}: {side} rows differ"
    sync_annotated = Counter(
        (t.row, t.status, t.multiplicity) for t in sync_result.tuples
    )
    async_annotated = Counter(
        (t.row, t.status, t.multiplicity) for t in async_result.tuples
    )
    assert sync_annotated == async_annotated, f"{label}: annotations differ"


def _calls(rng: random.Random):
    """Every (strategy, semantics) pair checked per case."""
    for strategy in available_strategies():
        yield strategy, "set"
    yield "naive", "bag"


async def _check_case(engine, aeng, query, db, sharded, executor, label_base):
    for strategy, semantics in _calls(None):
        label = f"{label_base}, strategy {strategy} ({semantics})"
        try:
            expected = engine.evaluate(
                query, db, strategy=strategy, semantics=semantics, use_cache=False
            )
        except (StrategyNotApplicableError, EngineError, ValueError, TypeError) as exc:
            try:
                await aeng.evaluate(
                    query, db, strategy=strategy, semantics=semantics,
                    use_cache=False,
                )
            except type(exc):
                continue
            raise AssertionError(
                f"{label}: sync raised {type(exc).__name__} but async did not"
            )
        monolithic = await aeng.evaluate(
            query, db, strategy=strategy, semantics=semantics, use_cache=False
        )
        _assert_identical(expected, monolithic, label)
        distributed = await aeng.evaluate(
            query, sharded, strategy=strategy, semantics=semantics,
            use_cache=False, executor=executor,
        )
        _assert_identical(expected, distributed, f"{label} [sharded]")


def test_async_engine_matches_sync_on_random_cases():
    rng = random.Random(SEED)

    async def main():
        with Engine() as engine:
            async with AsyncEngine(pool="thread", max_workers=4) as aeng:
                for case in range(CASES):
                    db = _build_database(rng)
                    query = _QueryGen(rng, db.schema()).query(rng.randint(1, 3))
                    shards = rng.choice([1, 2, 3])
                    sharded = ShardedDatabase.from_database(db, shards)
                    executor = rng.choice(["serial", "thread"])
                    await _check_case(
                        engine, aeng, query, db, sharded, executor,
                        f"case {case} (seed {SEED}, shards {shards})",
                    )

    asyncio.run(main())


def test_async_compare_identical_to_sync_on_figure1_with_process_pool():
    """The Figure 1 cases through a real process pool, both frontends.

    Also the pickling gate: every task shape (SQL AST with subqueries,
    algebra plans, annotated outcomes with marked nulls) crosses the
    worker-process boundary here.
    """
    db = figure1_database_with_null()

    async def main():
        with Engine() as engine:
            async with AsyncEngine(pool="process", max_workers=2) as aeng:
                for case in figure1_cases():
                    # approx-libkin16's Qf side materialises Dom^k on the
                    # anti-join case (~15 s each way — E5's blowup); its
                    # equivalence is covered by the random sweep and by
                    # the other two cases here.
                    strategies = tuple(
                        name
                        for name in available_strategies()
                        if not (
                            name == "approx-libkin16"
                            and case.name == "customers without a paid order"
                        )
                    )
                    for frontend, query in (("sql", case.sql), ("algebra", case.algebra)):
                        expected = engine.compare(
                            query, db, strategies=strategies, use_cache=False
                        )
                        actual = await aeng.compare(
                            query, db, strategies=strategies, use_cache=False
                        )
                        assert set(actual) == set(expected), (
                            f"{case.name} [{frontend}]: applicable strategies differ "
                            f"({sorted(expected)} vs {sorted(actual)})"
                        )
                        for strategy in expected:
                            _assert_identical(
                                expected[strategy],
                                actual[strategy],
                                f"{case.name} [{frontend}] {strategy}",
                            )

    asyncio.run(main())


def test_async_batch_matches_sync_batch_on_figure1():
    db = figure1_database_with_null()
    queries = [case.algebra for case in figure1_cases()] * 2

    async def main():
        with Engine() as engine:
            expected = engine.evaluate_batch(
                queries, db, strategy="approx-guagliardo16", use_cache=False
            )
            async with AsyncEngine(pool="thread", max_workers=4) as aeng:
                actual = await aeng.evaluate_batch(
                    queries, db, strategy="approx-guagliardo16", use_cache=False
                )
            for i, (want, got) in enumerate(zip(expected, actual)):
                _assert_identical(want, got, f"batch query {i}")

    asyncio.run(main())
