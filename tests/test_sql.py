"""Tests for the SQL frontend: lexer, parser, SQL-semantics evaluation, compiler."""

from __future__ import annotations

import pytest

from repro.algebra import evaluate
from repro.datamodel import Database, Null, Relation
from repro.incomplete import certain_answers_with_nulls
from repro.sql import (
    SqlCompilationError,
    SqlSyntaxError,
    compile_sql,
    parse,
    run_sql,
    tokenize,
)
from repro.sql import ast as sql_ast
from repro.workloads import (
    CUSTOMERS_WITHOUT_PAID_ORDER_SQL,
    TAUTOLOGY_SQL,
    UNPAID_ORDERS_SQL,
    figure1_database,
    figure1_database_with_null,
    tautology_algebra,
    unpaid_orders_algebra,
)


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a FROM t WHERE a = 'x''y' -- comment\n")
        kinds = [t.kind for t in tokens]
        assert kinds[:3] == ["KEYWORD", "IDENT", "KEYWORD"]
        strings = [t.value for t in tokens if t.kind == "STRING"]
        assert strings == ["x'y"]

    def test_numbers_and_symbols(self):
        tokens = tokenize("SELECT 3.5, 7 FROM t WHERE a <> 2")
        numbers = [t.value for t in tokens if t.kind == "NUMBER"]
        assert numbers == ["3.5", "7", "2"]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 'oops FROM t")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT a FROM t WHERE a @ 1")


class TestParser:
    def test_parse_simple_select(self):
        query = parse("SELECT a, b FROM t WHERE a = 1 AND b <> 'z'")
        assert isinstance(query, sql_ast.SelectQuery)
        assert [item.output_name() for item in query.items] == ["a", "b"]
        assert isinstance(query.where, sql_ast.BoolOp)

    def test_parse_not_in_and_exists(self):
        query = parse(UNPAID_ORDERS_SQL)
        assert isinstance(query.where, sql_ast.InSubquery)
        assert query.where.negated
        query2 = parse(CUSTOMERS_WITHOUT_PAID_ORDER_SQL)
        assert isinstance(query2.where, sql_ast.ExistsSubquery)
        assert query2.where.negated

    def test_parse_set_operations(self):
        query = parse("SELECT a FROM r UNION ALL SELECT a FROM s EXCEPT SELECT a FROM t")
        assert isinstance(query, sql_ast.SetOperation)
        assert query.op == "EXCEPT"
        assert isinstance(query.left, sql_ast.SetOperation)
        assert query.left.all

    def test_parse_distinct_star_aliases(self):
        query = parse("SELECT DISTINCT * FROM r x, s AS y")
        assert query.distinct and query.select_star
        assert [t.name() for t in query.tables] == ["x", "y"]

    def test_parse_is_null(self):
        query = parse("SELECT a FROM r WHERE a IS NOT NULL")
        assert isinstance(query.where, sql_ast.IsNull) and query.where.negated

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM r garbage! extra")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a WHERE a = 1")


class TestSqlEvaluation:
    def test_figure1_queries_on_complete_data(self, figure1):
        assert run_sql(figure1, UNPAID_ORDERS_SQL).rows_set() == {("o3",)}
        assert run_sql(figure1, CUSTOMERS_WITHOUT_PAID_ORDER_SQL).rows_set() == set()

    def test_figure1_false_negative_and_false_positive(self, figure1_null):
        """The Section 1 phenomenon: one NULL flips both queries."""
        # False negative: the unpaid order o3 disappears.
        assert run_sql(figure1_null, UNPAID_ORDERS_SQL).rows_set() == set()
        # False positive: c2 appears although it is not a certain answer.
        sql_answers = run_sql(figure1_null, CUSTOMERS_WITHOUT_PAID_ORDER_SQL)
        assert sql_answers.rows_set() == {("c2",)}

    def test_tautology_query_misses_certain_answer(self, figure1_null):
        assert run_sql(figure1_null, TAUTOLOGY_SQL).rows_set() == {("c1",)}
        truth = certain_answers_with_nulls(tautology_algebra(), figure1_null)
        assert truth.rows_set() == {("c1",), ("c2",)}

    def test_null_comparisons_are_unknown(self, null_x):
        db = Database({"r": Relation(("a",), [(null_x,), (1,)])})
        assert run_sql(db, "SELECT a FROM r WHERE a = 1").rows_set() == {(1,)}
        assert run_sql(db, "SELECT a FROM r WHERE a <> 1").rows_set() == set()
        assert run_sql(db, "SELECT a FROM r WHERE a IS NULL").rows_set() == {(null_x,)}

    def test_in_with_null_never_true_but_not_false(self, null_x):
        db = Database(
            {"r": Relation(("a",), [(1,), (2,)]), "s": Relation(("a",), [(1,), (null_x,)])}
        )
        in_answers = run_sql(db, "SELECT a FROM r WHERE a IN (SELECT a FROM s)")
        not_in_answers = run_sql(db, "SELECT a FROM r WHERE a NOT IN (SELECT a FROM s)")
        assert in_answers.rows_set() == {(1,)}
        assert not_in_answers.rows_set() == set()

    def test_bag_semantics_and_distinct(self):
        db = Database({"r": Relation(("a",), [(1,), (1,)])})
        plain = run_sql(db, "SELECT a FROM r")
        distinct = run_sql(db, "SELECT DISTINCT a FROM r")
        assert plain.multiplicity((1,)) == 2
        assert distinct.multiplicity((1,)) == 1

    def test_set_operations(self):
        db = Database(
            {"r": Relation(("a",), [(1,), (2,)]), "s": Relation(("a",), [(2,), (3,)])}
        )
        assert run_sql(db, "SELECT a FROM r UNION SELECT a FROM s").rows_set() == {
            (1,),
            (2,),
            (3,),
        }
        assert run_sql(db, "SELECT a FROM r EXCEPT SELECT a FROM s").rows_set() == {(1,)}
        assert run_sql(db, "SELECT a FROM r INTERSECT SELECT a FROM s").rows_set() == {(2,)}

    def test_correlated_exists(self, figure1):
        query = (
            "SELECT O.oid FROM Orders O WHERE EXISTS "
            "( SELECT * FROM Payments P WHERE P.oid = O.oid )"
        )
        assert run_sql(figure1, query).rows_set() == {("o1",), ("o2",)}

    def test_unknown_table_and_column_errors(self, figure1):
        with pytest.raises(ValueError):
            run_sql(figure1, "SELECT x FROM Nothing")
        with pytest.raises(ValueError):
            run_sql(figure1, "SELECT nope FROM Orders")

    def test_comparison_ordering(self, figure1):
        cheap = run_sql(figure1, "SELECT title FROM Orders WHERE price <= 35")
        assert cheap.rows_set() == {("Big Data",), ("SQL",)}


class TestSqlCompiler:
    def test_compile_and_evaluate_matches_sql_on_complete_data(self, figure1):
        text = "SELECT title FROM Orders WHERE price > 30"
        compiled = compile_sql(text, figure1.schema())
        assert evaluate(compiled, figure1).rows_set() == run_sql(figure1, text).rows_set()

    def test_compile_join(self, figure1):
        text = (
            "SELECT C.name FROM Customers C, Payments P "
            "WHERE C.cid = P.cid AND P.oid = 'o1'"
        )
        compiled = compile_sql(text, figure1.schema())
        assert evaluate(compiled, figure1).rows_set() == {("John",)}

    def test_compile_set_operation(self, figure1):
        text = "SELECT cid FROM Payments UNION SELECT cid FROM Customers"
        compiled = compile_sql(text, figure1.schema())
        assert evaluate(compiled, figure1).rows_set() == {("c1",), ("c2",)}

    def test_uncorrelated_not_in_compiles_to_antijoin(self, figure1):
        # The parser always accepted this; now the compiler does too.
        plan = compile_sql(UNPAID_ORDERS_SQL, figure1.schema())
        from repro.algebra.ast import AntiSemiJoin, walk
        from repro.algebra.evaluator import Evaluator

        assert any(isinstance(node, AntiSemiJoin) for node in walk(plan))
        assert Evaluator().evaluate(plan, figure1).rows_set() == {("o3",)}

    def test_correlated_subqueries_not_compilable(self, figure1):
        from repro.workloads.figure1 import CUSTOMERS_WITHOUT_PAID_ORDER_SQL

        with pytest.raises(SqlCompilationError, match="[Cc]orrelated"):
            compile_sql(CUSTOMERS_WITHOUT_PAID_ORDER_SQL, figure1.schema())

    def test_unknown_table_rejected(self, figure1):
        with pytest.raises(SqlCompilationError):
            compile_sql("SELECT a FROM missing", figure1.schema())
