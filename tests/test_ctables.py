"""Tests for conditional tables and the four grounding strategies of [36]."""

from __future__ import annotations

import pytest

from repro.algebra import builder as rb, evaluate
from repro.approx import translate_guagliardo16
from repro.ctables import (
    CTable,
    CTuple,
    ConditionalDatabase,
    CtEq,
    CtNeq,
    CtOpaque,
    CtTrue,
    STRATEGIES,
    aware_evaluate,
    ct_and,
    ct_not,
    ct_or,
    eager_evaluate,
    forced_equalities,
    ground,
    lazy_evaluate,
    run_strategy,
    semi_eager_evaluate,
)
from repro.datamodel import Database, Null, Relation
from repro.incomplete import certain_answers_with_nulls
from repro.mvl.truthvalues import FALSE, TRUE, UNKNOWN


class TestConditions:
    def test_ground_valid_condition(self, null_x):
        condition = ct_or([CtEq(null_x, 1), CtNeq(null_x, 1)])
        assert ground(condition) is TRUE

    def test_ground_unsatisfiable_condition(self, null_x):
        condition = ct_and([CtEq(null_x, 1), CtEq(null_x, 2)])
        assert ground(condition) is FALSE

    def test_ground_contingent_condition(self, null_x):
        assert ground(CtEq(null_x, 1)) is UNKNOWN

    def test_ground_constant_conditions(self):
        assert ground(CtTrue()) is TRUE
        assert ground(ct_not(CtTrue())) is FALSE

    def test_opaque_atoms_ground_to_unknown(self, null_x):
        assert ground(CtOpaque("x<3", (null_x,))) is UNKNOWN

    def test_forced_equalities_paper_example(self, null_x, null_y):
        # ⟨⊥2, ⊥1 = c ∧ ⊥1 = ⊥2⟩ should force ⊥2 = c (and ⊥1 = c).
        condition = ct_and([CtEq(null_x, "c"), CtEq(null_x, null_y)])
        forced = forced_equalities(condition)
        assert forced.get(null_x) == "c"
        assert forced.get(null_y) == "c"

    def test_no_forced_equality_for_free_null(self, null_x):
        assert forced_equalities(CtNeq(null_x, "c")) == {}

    def test_smart_constructors_simplify(self, null_x):
        from repro.ctables.condition import ct_eq

        assert isinstance(ct_and([CtTrue(), CtTrue()]), CtTrue)
        assert ct_eq(1, 2).__class__.__name__ == "CtFalse"
        assert ct_eq(1, 1).__class__.__name__ == "CtTrue"
        assert isinstance(ct_or([CtTrue(), CtEq(null_x, 1)]), CtTrue)
        assert ground(ct_and([CtEq(1, 2)])) is FALSE


class TestCTables:
    def test_from_relation_all_true(self, rs_database):
        table = CTable.from_relation(rs_database["R"])
        assert all(isinstance(ct.condition, CtTrue) for ct in table)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CTable(("A",), [CTuple((1, 2))])

    def test_certain_and_possible_rows(self, null_x):
        table = CTable(
            ("A",),
            [
                CTuple((1,), CtTrue()),
                CTuple((2,), CtEq(null_x, 5)),
                CTuple((3,), ct_and([CtEq(null_x, 1), CtEq(null_x, 2)])),
            ],
        )
        assert table.certain_rows().rows_set() == {(1,)}
        assert table.possible_rows().rows_set() == {(1,), (2,)}


class TestStrategies:
    def test_all_strategies_sound(self, null_x):
        db = Database(
            {
                "R": Relation(("A", "B"), [(1, 2), (null_x, 3)]),
                "S": Relation(("A", "B"), [(1, null_x)]),
            }
        )
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        truth = certain_answers_with_nulls(query, db).rows_set()
        for strategy in STRATEGIES:
            result = run_strategy(strategy, query, db)
            assert result.certain.rows_set() <= truth, strategy

    def test_theorem_4_9_eager_matches_figure_2b(self, rs_database):
        """Q+(D) = Eval_e,t(Q, D) and Q?(D) = Eval_e,p(Q, D) on the running example."""
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        eager = eager_evaluate(query, rs_database)
        pair = translate_guagliardo16(query, rs_database.schema())
        assert eager.certain.rows_set() == evaluate(pair.certain, rs_database).rows_set()
        assert eager.possible.rows_set() == evaluate(pair.possible, rs_database).rows_set()

    def test_strategy_precision_ordering(self, null_x, null_y):
        """Later strategies retain at least the certain answers of earlier ones."""
        db = Database(
            {
                "R": Relation(("A",), [(1,), (null_x,)]),
                "S": Relation(("A",), [(null_x,), (2,)]),
                "T": Relation(("A",), [(2,), (null_y,)]),
            }
        )
        query = rb.difference(
            rb.relation("R"), rb.difference(rb.relation("S"), rb.relation("T"))
        )
        results = {s: run_strategy(s, query, db).certain.rows_set() for s in STRATEGIES}
        assert results["eager"] <= results["lazy"] <= results["aware"]
        assert results["eager"] <= results["semi_eager"] <= results["aware"]

    def test_aware_more_precise_than_eager_on_nested_difference(self, null_x):
        """The aware strategy keeps exact conditions and can certify more."""
        db = Database(
            {
                "R": Relation(("A",), [(1,)]),
                "S": Relation(("A",), [(null_x,)]),
                "T": Relation(("A",), [(1,)]),
            }
        )
        # R − (S − T): whatever the null is, 1 survives (either the null is 1,
        # and then S − T is empty, or it is not 1 and cannot remove 1).  The
        # aware strategy sees the contradiction in the accumulated condition;
        # the eager strategy has already collapsed it to "unknown".
        query = rb.difference(
            rb.relation("R"), rb.difference(rb.relation("S"), rb.relation("T"))
        )
        truth = certain_answers_with_nulls(query, db).rows_set()
        assert truth == {(1,)}
        assert aware_evaluate(query, db).certain.rows_set() == {(1,)}
        assert eager_evaluate(query, db).certain.rows_set() == set()

    def test_semi_eager_propagates_equalities(self, null_x):
        db = Database({"S": Relation(("A",), [(null_x,)])})
        query = rb.select(rb.relation("S"), rb.eq("A", 5))
        semi = semi_eager_evaluate(query, db)
        eager = eager_evaluate(query, db)
        assert [ct.values for ct in semi.ctable] == [(5,)]
        assert [ct.values for ct in eager.ctable] == [(null_x,)]

    def test_lazy_only_grounds_at_difference(self, null_x):
        db = Database({"S": Relation(("A",), [(null_x,)])})
        query = rb.select(rb.relation("S"), rb.eq("A", 5))
        lazy = lazy_evaluate(query, db)
        # No difference operator: the condition is still the exact equality.
        assert isinstance(list(lazy.ctable)[0].condition, CtEq)

    def test_unknown_strategy_rejected(self, rs_database):
        with pytest.raises(ValueError):
            run_strategy("bogus", rb.relation("R"), rs_database)

    def test_strategies_exact_on_complete_database(self, figure1):
        query = rb.project(rb.relation("Payments"), ["cid"])
        expected = evaluate(query, figure1).rows_set()
        for strategy in STRATEGIES:
            result = run_strategy(strategy, query, figure1)
            assert result.certain.rows_set() == expected
            assert result.possible.rows_set() == expected
