"""Tests for the many-valued logics of Section 5."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.calculus import ast as fo
from repro.datamodel import Database, Null, Relation
from repro.incomplete import certain_answers_with_nulls
from repro.mvl import (
    BOOL_SEMANTICS,
    FALSE,
    L2V,
    L3V,
    L3V_ASSERT,
    L6V,
    MixedSemantics,
    NULLFREE_SEMANTICS,
    SQL_SEMANTICS,
    TRUE,
    UNIF_SEMANTICS,
    UNKNOWN,
    Assertion,
    capture,
    captured_answers,
    fo_bool,
    fo_sql,
    fo_sql_assert,
    fo_unif,
    is_distributive,
    is_idempotent,
    is_weakly_idempotent,
    kleene_and,
    kleene_not,
    kleene_or,
    maximal_idempotent_distributive_sublogics,
    respects_knowledge_order,
)
from repro.calculus.evaluation import FoQuery
from repro.probabilistic import mu_limit


class TestKleene:
    def test_figure_3_truth_tables(self):
        assert kleene_and(TRUE, UNKNOWN) is UNKNOWN
        assert kleene_and(FALSE, UNKNOWN) is FALSE
        assert kleene_or(TRUE, UNKNOWN) is TRUE
        assert kleene_or(FALSE, UNKNOWN) is UNKNOWN
        assert kleene_not(UNKNOWN) is UNKNOWN

    def test_l3v_is_idempotent_distributive_monotone(self):
        assert is_idempotent(L3V)
        assert is_distributive(L3V)
        assert is_weakly_idempotent(L3V)
        assert respects_knowledge_order(L3V)

    def test_l2v_truth_tables(self):
        assert L2V.conj(TRUE, FALSE) is FALSE
        assert L2V.disj(TRUE, FALSE) is TRUE
        assert L2V.neg(TRUE) is FALSE


class TestSixValued:
    def test_restriction_to_three_values_is_kleene(self):
        restricted = L6V.restrict((TRUE, FALSE, UNKNOWN))
        for a in restricted.values:
            assert restricted.neg(a) == L3V.neg(a)
            for b in restricted.values:
                assert restricted.conj(a, b) == L3V.conj(a, b)
                assert restricted.disj(a, b) == L3V.disj(a, b)

    def test_l6v_not_idempotent_nor_distributive(self):
        assert not is_idempotent(L6V)
        assert not is_distributive(L6V)

    def test_theorem_5_3_maximal_sublogic(self):
        maximal = maximal_idempotent_distributive_sublogics(L6V)
        assert [set(s) for s in maximal] == [{TRUE, FALSE, UNKNOWN}]

    def test_l6v_respects_knowledge_order(self):
        assert respects_knowledge_order(L6V)

    def test_negation_involution_on_determined_values(self):
        for value in L6V.values:
            assert L6V.neg(L6V.neg(value)) == value


class TestAssertion:
    def test_assertion_collapses_unknown(self):
        assert L3V_ASSERT.unary("assert", UNKNOWN) is FALSE
        assert L3V_ASSERT.unary("assert", TRUE) is TRUE
        assert L3V_ASSERT.unary("assert", FALSE) is FALSE

    def test_assertion_breaks_knowledge_monotonicity(self):
        assert respects_knowledge_order(L3V)
        assert not respects_knowledge_order(L3V_ASSERT)
        assert respects_knowledge_order(L3V_ASSERT, include_extra=False)


@pytest.fixture
def unif_db(null_x):
    return Database({"R": Relation(("A", "B"), [(1, null_x)])})


class TestAtomSemantics:
    def test_bool_vs_unif_vs_sql_on_missing_tuple(self, unif_db):
        atom = fo.RelAtom("R", [fo.ConstTerm(1), fo.ConstTerm(1)])
        assert fo_bool().evaluate(atom, unif_db) is FALSE
        assert fo_unif().evaluate(atom, unif_db) is UNKNOWN
        assert fo_sql().evaluate(atom, unif_db) is FALSE

    def test_unif_equality(self, unif_db, null_x):
        eq = fo.EqAtom(fo.ConstTerm(1), fo.ConstTerm(2))
        assert fo_unif().evaluate(eq, unif_db) is FALSE
        eq_null = fo.EqAtom(fo.ConstTerm(1), fo.ConstTerm(null_x))
        assert fo_unif().evaluate(eq_null, unif_db) is UNKNOWN

    def test_nullfree_relation_atom(self, unif_db, null_x):
        atom = fo.RelAtom("R", [fo.ConstTerm(1), fo.ConstTerm(null_x)])
        value = NULLFREE_SEMANTICS.relation_atom(unif_db, "R", (1, null_x))
        assert value is UNKNOWN
        assert BOOL_SEMANTICS.relation_atom(unif_db, "R", (1, null_x)) is TRUE

    def test_mixed_semantics_dispatch(self, unif_db):
        mixed = MixedSemantics({"R": UNIF_SEMANTICS}, default=BOOL_SEMANTICS)
        assert mixed.relation_atom(unif_db, "R", (1, 1)) is UNKNOWN
        assert mixed.relation_atom(unif_db, "Other", (1, 1)) is FALSE


class TestCorrectnessGuarantees:
    def test_corollary_5_2_unif_semantics_sound(self, null_x):
        """Whenever the unif semantics says t, the tuple is a certain answer."""
        db = Database(
            {
                "R": Relation(("A",), [(1,), (null_x,)]),
                "S": Relation(("A",), [(null_x,)]),
            }
        )
        x = fo.Var("x")
        formula = fo.And(fo.RelAtom("R", [x]), fo.Not(fo.RelAtom("S", [x])))
        produced = fo_unif().answers(formula, db, [x])
        truth = certain_answers_with_nulls(FoQuery(formula, free=[x]), db)
        assert produced.rows_set() <= truth.rows_set()

    def test_sql_with_assertion_returns_almost_certainly_false(self, null_x):
        """The R − (S − T) example at the end of Section 5.1."""
        db = Database(
            {
                "R": Relation(("A",), [(1,)]),
                "S": Relation(("A",), [(1,)]),
                "T": Relation(("A",), [(null_x,)]),
            }
        )
        x = fo.Var("x")
        inner = fo.And(
            fo.RelAtom("S", [x]),
            Assertion(
                fo.Not(fo.Exists(["y"], fo.And(fo.RelAtom("T", ["y"]), fo.EqAtom(x, "y"))))
            ),
        )
        sql_formula = fo.And(fo.RelAtom("R", [x]), Assertion(fo.Not(inner)))
        sql_answers = fo_sql_assert().answers(sql_formula, db, [x])
        assert sql_answers.rows_set() == {(1,)}
        # 1 is almost certainly *not* an answer to R − (S − T).
        from repro.algebra import builder as rb

        query = rb.difference(rb.relation("R"), rb.difference(rb.relation("S"), rb.relation("T")))
        assert mu_limit(query, db, (1,)) == 0
        # Without the assertion operator, FOSQL does not return 1.
        plain = fo.And(
            fo.RelAtom("R", [x]),
            fo.Not(
                fo.And(
                    fo.RelAtom("S", [x]),
                    fo.Not(fo.Exists(["y"], fo.And(fo.RelAtom("T", ["y"]), fo.EqAtom(x, "y")))),
                )
            ),
        )
        assert fo_sql().answers(plain, db, [x]).rows_set() == set()


class TestCapture:
    @pytest.mark.parametrize("semantics", [SQL_SEMANTICS, NULLFREE_SEMANTICS, BOOL_SEMANTICS])
    def test_theorem_5_4_capture_agrees_with_three_valued_eval(self, semantics, null_x):
        db = Database(
            {
                "R": Relation(("A", "B"), [(1, 2), (null_x, 3)]),
                "S": Relation(("A",), [(2,), (null_x,)]),
            }
        )
        x = fo.Var("x")
        formula = fo.And(
            fo.Exists(["y"], fo.RelAtom("R", [x, "y"])),
            fo.Not(fo.RelAtom("S", [x])),
        )
        from repro.mvl import ManyValuedFo

        three_valued = ManyValuedFo(L3V, semantics)
        direct = three_valued.answers(formula, db, [x]).rows_set()
        via_capture = captured_answers(formula, db, [x], atoms=semantics).rows_set()
        assert direct == via_capture

    def test_capture_of_assertion(self, null_x):
        db = Database({"T": Relation(("A",), [(null_x,)])})
        x = fo.Var("x")
        formula = Assertion(fo.Not(fo.RelAtom("T", [x])))
        pair = capture(formula, SQL_SEMANTICS)
        # ↑ collapses u to f, so the capture of "false" is just ¬(capture of true).
        query_t = FoQuery(pair.when_true, free=[x]).answers(db)
        direct = fo_sql_assert().answers(formula, db, [x])
        assert query_t.rows_set() == direct.rows_set()

    def test_unknown_capture_partition(self, null_x):
        """ψ_t, ψ_f, ψ_u partition the candidate tuples."""
        db = Database({"S": Relation(("A",), [(2,), (null_x,)])})
        x = fo.Var("x")
        formula = fo.EqAtom(x, fo.ConstTerm(2))
        pair = capture(formula, SQL_SEMANTICS)
        domain_rows = {(v,) for v in db.active_domain()}
        rows_t = FoQuery(pair.when_true, free=[x]).answers(db).rows_set()
        rows_f = FoQuery(pair.when_false, free=[x]).answers(db).rows_set()
        rows_u = FoQuery(pair.when_unknown, free=[x]).answers(db).rows_set()
        assert rows_t | rows_f | rows_u >= domain_rows
        assert not (rows_t & rows_f) and not (rows_t & rows_u) and not (rows_f & rows_u)


class TestKleeneProperties:
    @given(st.sampled_from([TRUE, FALSE, UNKNOWN]), st.sampled_from([TRUE, FALSE, UNKNOWN]))
    def test_de_morgan(self, a, b):
        assert kleene_not(kleene_and(a, b)) == kleene_or(kleene_not(a), kleene_not(b))
        assert kleene_not(kleene_or(a, b)) == kleene_and(kleene_not(a), kleene_not(b))

    @given(
        st.sampled_from([TRUE, FALSE, UNKNOWN]),
        st.sampled_from([TRUE, FALSE, UNKNOWN]),
        st.sampled_from([TRUE, FALSE, UNKNOWN]),
    )
    def test_associativity_and_commutativity(self, a, b, c):
        assert kleene_and(a, kleene_and(b, c)) == kleene_and(kleene_and(a, b), c)
        assert kleene_or(a, kleene_or(b, c)) == kleene_or(kleene_or(a, b), c)
        assert kleene_and(a, b) == kleene_and(b, a)
        assert kleene_or(a, b) == kleene_or(b, a)
