"""Tests for the unified evaluation engine façade (`repro.engine`).

Covers the four behaviours the façade promises: registry dispatch,
frontend normalization equivalence, cache hit/miss semantics, and
cross-strategy soundness on small incomplete databases where the exact
certain answers are computable.
"""

from __future__ import annotations

import pytest

from repro import (
    Certainty,
    Database,
    Engine,
    Null,
    QueryResult,
    Session,
    StrategyNotApplicableError,
    UnknownStrategyError,
    available_strategies,
    builder as rb,
    normalize_query,
    register_strategy,
)
from repro.algebra import Gt
from repro.bench import strategy_table
from repro.calculus import ast as fo
from repro.calculus.evaluation import FoQuery
from repro.ctables import run_strategy
from repro.engine import (
    EngineError,
    EvaluationStrategy,
    NormalizationError,
    StrategyCapabilities,
    StrategyOutcome,
    annotate,
    database_fingerprint,
    get_strategy,
    query_fingerprint,
    strategy_aliases,
    unregister_strategy,
)
from repro.incomplete import certain_answers_with_nulls, naive_evaluate_direct
from repro.sql import run_sql
from repro.workloads import figure1_cases, unpaid_orders_algebra

ALL_STRATEGIES = (
    "sql-3vl",
    "naive",
    "exact-certain",
    "approx-libkin16",
    "approx-guagliardo16",
    "ctables",
)


@pytest.fixture
def rs_session(rs_database) -> Session:
    return Session(rs_database)


@pytest.fixture
def figure1_session(figure1_null) -> Session:
    return Session(figure1_null)


# ----------------------------------------------------------------------
# Registry dispatch
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_six_strategies_are_registered(self):
        assert set(ALL_STRATEGIES) <= set(available_strategies())

    def test_aliases_resolve_to_canonical_strategies(self):
        aliases = strategy_aliases()
        assert aliases["sql"] == "sql-3vl"
        assert aliases["q-plus"] == "approx-guagliardo16"
        assert get_strategy("certain").name == "exact-certain"
        assert get_strategy("figure2a").name == "approx-libkin16"

    def test_unknown_strategy_raises_with_available_list(self, rs_session):
        with pytest.raises(UnknownStrategyError, match="naive"):
            rs_session.evaluate(rb.relation("R"), strategy="no-such-strategy")

    def test_custom_strategy_registration_and_removal(self, rs_database):
        @register_strategy("everything-empty", aliases=("nothing",))
        class EmptyStrategy(EvaluationStrategy):
            capabilities = StrategyCapabilities(
                semantics=("set",), requires=("algebra", "calculus")
            )

            def run(self, query, database, *, semantics, **options):
                relation = naive_evaluate_direct(self.require_executable(query), database)
                empty = type(relation)(relation.attributes)
                return StrategyOutcome(answer=empty, annotated=annotate(empty, Certainty.CERTAIN))

        try:
            engine = Engine()
            result = engine.evaluate(
                rb.relation("R"), rs_database, strategy="nothing", use_cache=False
            )
            assert result.strategy == "everything-empty"
            assert len(result) == 0
        finally:
            unregister_strategy("everything-empty")
        assert "everything-empty" not in available_strategies()
        assert "nothing" not in strategy_aliases()

    def test_alias_cannot_hijack_existing_strategies(self):
        with pytest.raises(EngineError, match="collides"):

            @register_strategy("hijacker", aliases=("naive",))
            class Hijacker(EvaluationStrategy):
                def run(self, query, database, *, semantics, **options):
                    raise AssertionError("never reached")

        assert "hijacker" not in available_strategies()
        assert get_strategy("naive").name == "naive"
        with pytest.raises(EngineError, match="already registered"):

            @register_strategy("hijacker2", aliases=("sql",))
            class Hijacker2(EvaluationStrategy):
                def run(self, query, database, *, semantics, **options):
                    raise AssertionError("never reached")

    def test_strategy_rejects_unknown_options(self, rs_session):
        with pytest.raises(EngineError, match="does not understand"):
            rs_session.evaluate(rb.relation("R"), strategy="naive", frobnicate=True)

    def test_unsupported_semantics_is_rejected(self, rs_session):
        with pytest.raises(StrategyNotApplicableError, match="semantics"):
            rs_session.evaluate(
                rb.relation("R"), strategy="exact-certain", semantics="bag"
            )

    def test_unknown_semantics_is_rejected(self, rs_session):
        with pytest.raises(EngineError, match="unknown semantics"):
            rs_session.evaluate(rb.relation("R"), semantics="multiset")


# ----------------------------------------------------------------------
# Frontend normalization
# ----------------------------------------------------------------------
class TestNormalization:
    def test_sql_string_lowered_to_sql_and_algebra(self, figure1_null):
        normalized = normalize_query("SELECT oid FROM Orders", figure1_null.schema())
        assert normalized.frontend == "sql"
        assert normalized.sql_ast is not None
        assert normalized.algebra is not None
        assert normalized.forms() == ("sql", "algebra")

    def test_sql_with_uncorrelated_subquery_compiles_to_antijoin(self, figure1_null):
        # Uncorrelated [NOT] IN compiles to a semijoin/antijoin plan now;
        # only *correlated* subqueries stay outside the fragment.
        case = figure1_cases()[0]
        normalized = normalize_query(case.sql, figure1_null.schema())
        assert normalized.algebra is not None
        from repro.algebra.ast import AntiSemiJoin, walk

        assert any(isinstance(node, AntiSemiJoin) for node in walk(normalized.algebra))

    def test_sql_with_correlated_subquery_has_no_algebra_but_records_why(
        self, figure1_null
    ):
        correlated = (
            "SELECT oid FROM Orders WHERE oid IN "
            "(SELECT oid FROM Payments WHERE Payments.amount = Orders.price)"
        )
        normalized = normalize_query(correlated, figure1_null.schema())
        assert normalized.algebra is None
        assert any("not compiled" in note for note in normalized.notes)

    def test_algebra_and_calculus_frontends(self):
        algebra = normalize_query(rb.relation("R"))
        assert algebra.frontend == "algebra" and algebra.forms() == ("algebra",)
        formula = fo.RelAtom("R", [fo.Var("x")])
        calculus = normalize_query(formula)
        assert calculus.frontend == "calculus"
        assert calculus.fo is not None and calculus.fragment == "CQ"

    def test_fragment_classification_reaches_metadata(self, rs_session):
        formula = fo.RelAtom("R", [fo.Var("x")])
        result = rs_session.evaluate(FoQuery(formula), strategy="naive")
        assert result.metadata["fragment"] == "CQ"
        assert result.metadata["exact"] is True
        assert result.certain_rows() == {(1,)}

    def test_fingerprints_are_stable_and_distinguishing(self):
        q1 = rb.project(rb.relation("R"), ["A"])
        q2 = rb.project(rb.relation("R"), ["A"])
        q3 = rb.project(rb.relation("S"), ["A"])
        assert query_fingerprint(q1) == query_fingerprint(q2)
        assert query_fingerprint(q1) != query_fingerprint(q3)
        assert query_fingerprint("SELECT  A FROM R") == query_fingerprint("SELECT A FROM R")

    def test_unrecognised_input_raises(self):
        with pytest.raises(NormalizationError):
            normalize_query(42)

    def test_normalized_query_passes_through(self, rs_database):
        normalized = normalize_query(rb.relation("R"))
        result = Engine().evaluate(normalized, rs_database, strategy="naive")
        assert result.rows_set() == {(1,)}


class TestFrontendEquivalence:
    """The same query via SQL / algebra / calculus gives identical answers."""

    QUERIES = {
        "sql": "SELECT oid FROM Orders WHERE price > 30",
        "algebra": rb.project(
            rb.select(rb.relation("Orders"), Gt(rb.attr("price"), rb.lit(30))),
            ["oid"],
        ),
    }

    @staticmethod
    def _calculus() -> FoQuery:
        oid, t, p = fo.Var("oid"), fo.Var("t"), fo.Var("p")
        # ∃t,p. Orders(oid, t, p) ∧ p = 35|50 — price > 30 is not FO-atomic,
        # so spell out the constants of the Figure 1 instance.
        body = fo.Exists(
            [t, p],
            fo.And(
                fo.RelAtom("Orders", [oid, t, p]),
                fo.Or(fo.EqAtom(p, fo.ConstTerm(35)), fo.EqAtom(p, fo.ConstTerm(50))),
            ),
        )
        return FoQuery(body, free=[oid])

    @pytest.mark.parametrize("strategy", ["naive", "exact-certain"])
    def test_three_frontends_agree(self, figure1_session, strategy):
        results = [
            figure1_session.evaluate(self.QUERIES["sql"], strategy=strategy),
            figure1_session.evaluate(self.QUERIES["algebra"], strategy=strategy),
            figure1_session.evaluate(self._calculus(), strategy=strategy),
        ]
        for other in results[1:]:
            assert results[0].same_answers_as(other)
        assert results[0].rows_set() == {("o2",), ("o3",)}

    def test_sql_and_algebra_give_identical_query_results(self, figure1_session):
        via_sql = figure1_session.evaluate(self.QUERIES["sql"], strategy="approx-guagliardo16")
        via_algebra = figure1_session.evaluate(
            self.QUERIES["algebra"], strategy="approx-guagliardo16"
        )
        assert via_sql.same_answers_as(via_algebra)
        assert via_sql.certain_rows() == via_algebra.certain_rows()
        assert via_sql.possible_rows() == via_algebra.possible_rows()


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------
class TestCache:
    def test_hit_on_repeat_and_miss_on_different_query(self, rs_database):
        session = Session(rs_database)
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        first = session.evaluate(query, strategy="naive")
        second = session.evaluate(query, strategy="naive")
        assert not first.from_cache and second.from_cache
        assert second.same_answers_as(first)
        other = session.evaluate(rb.relation("R"), strategy="naive")
        assert not other.from_cache
        stats = session.cache_stats
        assert stats.hits == 1 and stats.size == 2

    def test_strategy_and_options_are_part_of_the_key(self, figure1_session):
        query = unpaid_orders_algebra()
        figure1_session.evaluate(query, strategy="ctables", variant="eager")
        lazy = figure1_session.evaluate(query, strategy="ctables", variant="lazy")
        assert not lazy.from_cache
        again = figure1_session.evaluate(query, strategy="ctables", variant="eager")
        assert again.from_cache

    def test_database_change_invalidates(self, figure1, figure1_null):
        engine = Engine()
        query = unpaid_orders_algebra()
        on_complete = engine.evaluate(query, figure1, strategy="naive")
        on_null = engine.evaluate(query, figure1_null, strategy="naive")
        assert not on_null.from_cache
        assert on_complete.rows_set() == {("o3",)}

    def test_use_cache_false_bypasses(self, rs_session):
        query = rb.relation("R")
        rs_session.evaluate(query)
        fresh = rs_session.evaluate(query, use_cache=False)
        assert not fresh.from_cache

    def test_lru_eviction(self, rs_database):
        engine = Engine(cache_size=2)
        queries = [rb.project(rb.relation("R"), ["A"]), rb.relation("R"), rb.relation("S")]
        for query in queries:
            engine.evaluate(query, rs_database)
        assert engine.cache_stats.size == 2
        evicted = engine.evaluate(queries[0], rs_database)
        assert not evicted.from_cache

    def test_zero_size_cache_disables_caching(self, rs_database):
        engine = Engine(cache_size=0)
        engine.evaluate(rb.relation("R"), rs_database)
        repeat = engine.evaluate(rb.relation("R"), rs_database)
        assert not repeat.from_cache

    def test_database_fingerprint_tracks_content_not_identity(self, null_x):
        db1 = Database.from_dict({"R": (("A",), [(1,), (null_x,)])})
        db2 = Database.from_dict({"R": (("A",), [(null_x,), (1,)])})
        db3 = Database.from_dict({"R": (("A",), [(2,), (null_x,)])})
        assert database_fingerprint(db1) == database_fingerprint(db2)
        assert database_fingerprint(db1) != database_fingerprint(db3)


# ----------------------------------------------------------------------
# Strategy correctness cross-checks
# ----------------------------------------------------------------------
class TestStrategyCorrectness:
    def test_soundness_chain_on_figure1(self, figure1_session):
        """Q+ ⊆ Eval_e ⊆ cert⊥ ⊆ naive ⊆ Q? on every Section 1 query.

        (Theorem 4.9 states Q+ = Eval_e,t; our c-table grounding also
        simplifies single-null tautologies, so it can be strictly sharper
        than the syntactic Q+ rewriting — hence ⊆, not =.)
        """
        for case in figure1_cases():
            query = case.algebra
            naive = figure1_session.evaluate(query, strategy="naive")
            exact = figure1_session.evaluate(query, strategy="exact-certain")
            plus = figure1_session.evaluate(query, strategy="approx-guagliardo16")
            qtqf = figure1_session.evaluate(query, strategy="approx-libkin16")
            eager = figure1_session.evaluate(query, strategy="ctables", variant="eager")
            assert plus.certain_rows() <= eager.certain_rows() <= exact.rows_set()
            assert qtqf.certain_rows() <= exact.rows_set()
            assert exact.rows_set() <= naive.rows_set()
            assert naive.rows_set() <= plus.possible.rows_set()
            assert eager.possible.rows_set() <= plus.possible.rows_set()

    def test_engine_results_match_legacy_entry_points(self, figure1_null):
        session = Session(figure1_null)
        query = unpaid_orders_algebra()
        assert session.naive(query).rows_set() == naive_evaluate_direct(
            query, figure1_null
        ).rows_set()
        assert session.certain(query).rows_set() == certain_answers_with_nulls(
            query, figure1_null
        ).rows_set()
        legacy = run_strategy("aware", query, figure1_null)
        via_engine = session.evaluate(query, strategy="ctables", variant="aware")
        assert via_engine.certain_rows() == legacy.certain.rows_set()

    def test_sql_3vl_matches_run_sql(self, figure1_null):
        session = Session(figure1_null)
        for case in figure1_cases():
            expected = run_sql(figure1_null, case.sql)
            got = session.sql(case.sql, semantics="bag")
            assert got.relation.same_rows_as(expected, bag=True)

    def test_sql_3vl_statuses(self, figure1, figure1_null):
        engine = Engine()
        sql = figure1_cases()[0].sql
        complete = engine.evaluate(sql, figure1, strategy="sql-3vl")
        assert complete.certain_rows() == {("o3",)}
        incomplete = engine.evaluate(sql, figure1_null, strategy="sql-3vl")
        assert all(t.status is Certainty.UNKNOWN for t in incomplete.tuples)

    def test_libkin16_flags_false_positives(self, figure1_session):
        # The tautology query: naive returns c1 and c2, but nothing beyond
        # the certain answers is certainly false here; use the customers
        # query, where SQL/naive invent c2 although it is certainly out.
        case = figure1_cases()[1]
        result = figure1_session.evaluate(case.algebra, strategy="approx-libkin16")
        naive = figure1_session.evaluate(case.algebra, strategy="naive")
        assert result.false_positive_rows() <= naive.rows_set()
        assert result.certainly_false is not None
        assert result.status_of(("c2",)) in (Certainty.FALSE_POSITIVE, None)

    def test_ctables_precision_is_monotone_in_laziness(self, figure1_session):
        query = figure1_cases()[1].algebra
        sizes = [
            len(figure1_session.evaluate(query, strategy="ctables", variant=v).certain_rows())
            for v in ("eager", "semi_eager", "lazy", "aware")
        ]
        assert sizes == sorted(sizes)

    def test_bag_semantics_naive_counts_duplicates(self):
        db = Database.from_dict({"R": (("A",), [(1,), (1,), (2,)])})
        result = Engine(default_semantics="bag").evaluate(
            rb.project(rb.relation("R"), ["A"]), db, strategy="naive"
        )
        assert result.relation.multiplicity((1,)) == 2
        assert {t.multiplicity for t in result.tuples} == {1, 2}

    def test_strategies_requiring_algebra_explain_themselves(self, figure1_session):
        # The NOT IN case compiles to an antijoin plan, which the Figure 2
        # translations are not defined on; the refusal names the operator.
        sql_with_subquery = figure1_cases()[0].sql
        with pytest.raises(StrategyNotApplicableError, match="AntiSemiJoin"):
            figure1_session.evaluate(sql_with_subquery, strategy="approx-guagliardo16")

    def test_exact_certain_with_possible_annotations(self, rs_session):
        query = rb.difference(rb.relation("R"), rb.relation("S"))
        result = rs_session.evaluate(query, strategy="exact-certain", with_possible=True)
        assert result.rows_set() == set()
        assert result.possible_rows() == {(1,)}
        assert result.status_of((1,)) is Certainty.POSSIBLE


# ----------------------------------------------------------------------
# Batch, compare and Session ergonomics
# ----------------------------------------------------------------------
class TestBatchAndCompare:
    def test_evaluate_batch(self, figure1_session):
        queries = [case.algebra for case in figure1_cases()]
        results = figure1_session.evaluate_batch(queries, strategy="approx-guagliardo16")
        assert [r.strategy for r in results] == ["approx-guagliardo16"] * 3
        assert results[0].certain_rows() == set()

    def test_compare_skips_inapplicable_strategies(self, figure1_session):
        results = figure1_session.compare(figure1_cases()[0].sql)
        assert "sql-3vl" in results
        assert "approx-guagliardo16" not in results

    def test_compare_raises_when_asked(self, figure1_session):
        with pytest.raises(StrategyNotApplicableError):
            figure1_session.compare(
                figure1_cases()[0].sql,
                strategies=["approx-guagliardo16"],
                skip_inapplicable=False,
            )

    def test_compare_on_algebra_runs_all_certainty_strategies(self, figure1_session):
        results = figure1_session.compare(unpaid_orders_algebra())
        assert set(results) >= {
            "naive",
            "exact-certain",
            "approx-libkin16",
            "approx-guagliardo16",
            "ctables",
        }

    def test_strategy_table_renders_compare_output(self, figure1_session):
        results = figure1_session.compare(unpaid_orders_algebra())
        text = strategy_table("comparison", results).to_text()
        for name in ("naive", "exact-certain", "approx-guagliardo16", "ctables"):
            assert name in text
        assert "time (ms)" in text
        cached = figure1_session.compare(unpaid_orders_algebra())
        assert "(cached)" in strategy_table("again", cached).to_text()

    def test_session_with_database_shares_engine(self, figure1, figure1_null):
        session = Session(figure1)
        other = session.with_database(figure1_null)
        assert other.engine is session.engine
        a = session.evaluate(unpaid_orders_algebra())
        b = other.evaluate(unpaid_orders_algebra())
        assert a.rows_set() != b.rows_set()


class TestQueryResult:
    def test_result_is_relation_like(self, figure1_session):
        result = figure1_session.naive(unpaid_orders_algebra())
        assert isinstance(result, QueryResult)
        assert len(result) == 2
        assert ("o3",) in result
        assert set(iter(result)) == result.rows_set()
        assert result.attributes == ("oid",)

    def test_to_text_includes_status_column(self, figure1_session):
        text = figure1_session.naive(unpaid_orders_algebra()).to_text()
        assert "status" in text and "possible" in text

    def test_summary_mentions_strategy_and_timing(self, figure1_session):
        summary = figure1_session.naive(unpaid_orders_algebra()).summary()
        assert summary.startswith("naive:") and "ms" in summary
