"""Does SQL need three-valued logic?  (Section 5 of the paper.)

Walks through the many-valued-logic story: the derived six-valued logic
and its collapse to Kleene's logic, the unification semantics with
correctness guarantees, the assertion operator that makes SQL return
almost-certainly-false answers, and the capture of the three-valued
semantics in ordinary Boolean first-order logic.

Run with:  python examples/sql_three_valued_logic.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Database, FoQuery, Null, Relation, Session
from repro.calculus import ast as fo
from repro.mvl import (
    FALSE,
    L3V,
    L6V,
    TRUE,
    UNKNOWN,
    Assertion,
    capture,
    fo_sql_assert,
    fo_unif,
    is_distributive,
    is_idempotent,
    maximal_idempotent_distributive_sublogics,
)


def main() -> None:
    print("1. The six-valued epistemic logic L6v, derived from possible worlds:")
    print(L6V.truth_table_text())
    maximal = maximal_idempotent_distributive_sublogics(L6V)
    print(
        "\n   L6v idempotent:", is_idempotent(L6V), " distributive:", is_distributive(L6V)
    )
    print(
        "   Maximal idempotent+distributive sublogic:",
        [[str(v) for v in s] for s in maximal],
        "→ exactly Kleene's L3v (Theorem 5.3).",
    )

    # 2. The R − (S − T) example.
    unknown = Null("t")
    db = Database(
        {
            "R": Relation(("A",), [(1,)]),
            "S": Relation(("A",), [(1,)]),
            "T": Relation(("A",), [(unknown,)]),
        }
    )
    x = fo.Var("x")
    in_t = fo.Exists(["y"], fo.And(fo.RelAtom("T", ["y"]), fo.EqAtom(x, "y")))
    plain = fo.And(fo.RelAtom("R", [x]), fo.Not(fo.And(fo.RelAtom("S", [x]), fo.Not(in_t))))
    asserted = fo.And(
        fo.RelAtom("R", [x]),
        Assertion(fo.Not(fo.And(fo.RelAtom("S", [x]), Assertion(fo.Not(in_t))))),
    )
    sql_text = (
        "SELECT R.A FROM R WHERE R.A NOT IN "
        "( SELECT S.A FROM S WHERE S.A NOT IN ( SELECT T.A FROM T ) )"
    )
    with Session(db) as session:
        print("\n2. R − (S − T) with R = S = {1}, T = {⊥}:")
        print("   certain answers:        ", sorted(session.certain(FoQuery(plain, free=[x])).rows_set()))
        print("   FO(L3v, unif) answers:  ", sorted(fo_unif().answers(plain, db, [x]).rows_set()))
        print("   FOSQL answers:          ", sorted(session.sql(FoQuery(plain, free=[x])).rows_set()))
        print("   FO↑SQL answers:         ", sorted(fo_sql_assert().answers(asserted, db, [x]).rows_set()))
        print("   real SQL engine:        ", sorted(session.sql(sql_text).rows_set()))
        print(
            "   → the assertion operator ↑ (SQL's WHERE keeping only 'true') is what"
            " lets SQL return the almost-certainly-false answer 1."
        )

        # 3. Capture in Boolean FO (Theorems 5.4 / 5.5).
        pair = capture(plain)
        captured = FoQuery(pair.when_true, free=[x]).answers(db).rows_set()
        print("\n3. Boolean FO capture of the three-valued semantics:")
        print("   ψ_t answers:", sorted(captured), "— identical to the FOSQL t-answers,")
        print("   so SQL's three-valued logic adds no expressive power over Boolean FO.")


if __name__ == "__main__":
    main()
