"""Async fan-out: comparing every evaluation regime concurrently.

The paper's central exercise — the same query pushed through SQL's
three-valued semantics, naïve evaluation, exact certain answers and the
approximation schemes — is embarrassingly parallel: each strategy is a
pure function of (query, database).  :class:`~repro.engine.AsyncSession`
exploits that: ``compare`` fans the strategies out over a worker pool,
``evaluate_batch`` overlaps whole batches of queries, and the async
session is a context manager, so the pool is shut down on exit.

Run with:  python examples/async_compare.py
"""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AsyncSession
from repro.bench import ResultTable
from repro.workloads import figure1_cases, figure1_database_with_null


async def main() -> None:
    database = figure1_database_with_null()
    print("Figure 1 database, second payment's oid replaced by a null:")
    print(database.to_text())

    # The process pool gives true parallelism across cores; use
    # pool="thread" to stay in-process.  Closing the session (the
    # ``async with``) shuts the pool down — no leaked workers.
    async with AsyncSession(database, pool="process", max_workers=4) as session:
        case = figure1_cases()[2]  # the oid = 'o2' OR oid <> 'o2' tautology
        print(f"\nAll strategies at once on: {case.sql}")
        results = await session.compare(case.sql)
        table = ResultTable(
            "compare(): every applicable strategy, evaluated concurrently",
            ["strategy", "answer rows", "certain", "wall (ms)"],
        )
        for name in sorted(results):
            result = results[name]
            table.add_row(
                name,
                sorted(map(str, result.rows_set())),
                sorted(map(str, result.certain_rows())),
                f"{result.elapsed * 1e3:.2f}",
            )
        table.print()

        # Batches overlap the same way; results come back in input order.
        queries = [c.algebra for c in figure1_cases()]
        batch = await session.evaluate_batch(queries, strategy="approx-guagliardo16")
        print("\nevaluate_batch() over the three Section 1 queries (Q+ certain rows):")
        for c, result in zip(figure1_cases(), batch):
            print(f"  {c.name:34s} {sorted(map(str, result.certain_rows()))}")

        # The async engine shares the sync engine's result cache: the
        # repeat batch is served without recomputation.
        again = await session.evaluate_batch(queries, strategy="approx-guagliardo16")
        stats = session.cache_stats
        print(
            f"\nrepeat batch from cache: {all(r.from_cache for r in again)} "
            f"(cache hits {stats.hits}, misses {stats.misses})"
        )


if __name__ == "__main__":
    asyncio.run(main())
