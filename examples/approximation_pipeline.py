"""Comparing every approximation procedure on a TPC-H-lite workload.

Generates a TPC-H-lite database with injected nulls and, for each
decision-support query, runs ``session.compare`` over the approximation
strategies — naïve evaluation, the sound Q+ rewriting of Figure 2b, the
eager and aware c-table strategies of [36] — collecting the unified
:class:`~repro.engine.QueryResult` objects into one table.

Run with:  python examples/approximation_pipeline.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Session
from repro.bench import ResultTable
from repro.workloads import TpchLiteConfig, generate_tpch_lite, tpch_lite_queries


def main() -> None:
    # Small scale and a modest null rate: the aware c-table strategy grounds
    # conditions mentioning every tuple of a subtracted relation, which gets
    # expensive as soon as many nulls end up in the same condition.
    config = TpchLiteConfig(
        customers=8, orders=14, lineitems=20, suppliers=4, parts=8, null_rate=0.04
    )
    with Session(generate_tpch_lite(config)) as session:
        db = session.database
        print(
            f"TPC-H-lite database: {db.total_rows()} rows, "
            f"{len(db.nulls())} marked nulls (rate {config.null_rate:.0%})."
        )

        # The Figure 2a (Qt, Qf) rewriting is deliberately left out here: on the
        # difference queries its Qf side materialises Dom^k for the wide lineitem
        # relation (k = 6), which is exactly the infeasibility the paper reports —
        # see benchmarks/bench_blowup_qtqf.py (experiment E5) for that comparison
        # on narrow relations where it can still be evaluated.
        table = ResultTable(
            "Answer-set sizes per procedure (sound procedures can only shrink)",
            ["query", "naive", "Q+ (2b)", "Eval_eager", "Eval_aware", "Q? (possible)"],
        )
        for name, query in sorted(tpch_lite_queries().items()):
            results = session.compare(
                query,
                strategies=["naive", "approx-guagliardo16", "ctables"],
                options={"ctables": {"variant": "eager"}},
            )
            aware = session.evaluate(query, strategy="ctables", variant="aware")
            plus = results["approx-guagliardo16"]
            table.add_row(
                name,
                len(results["naive"]),
                len(plus.certain_rows()),
                len(results["ctables"].certain_rows()),
                len(aware.certain_rows()),
                len(plus.possible),
            )
        table.print()

        print(
            "\nEvery sound procedure reports a subset of the naïve answers; the"
            "\ndifference-heavy queries lose the most answers because a single null"
            "\nin the subtracted relation can unify with everything."
        )


if __name__ == "__main__":
    main()
