"""The paper's Figure 1 scenario: how a single NULL breaks SQL answers.

Reproduces Section 1 of the paper end to end: the three SQL queries on
the orders/payments/customers database, with and without the NULL, and
the comparison against certain answers and the sound approximations.

Run with:  python examples/figure1_false_answers.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algebra import evaluate
from repro.approx import compare_answers, translate_guagliardo16
from repro.bench import ResultTable
from repro.incomplete import certain_answers_with_nulls
from repro.sql import run_sql
from repro.workloads import (
    CUSTOMERS_WITHOUT_PAID_ORDER_SQL,
    TAUTOLOGY_SQL,
    UNPAID_ORDERS_SQL,
    customers_without_paid_order_algebra,
    figure1_database,
    figure1_database_with_null,
    tautology_algebra,
    unpaid_orders_algebra,
)


def main() -> None:
    complete = figure1_database()
    incomplete = figure1_database_with_null()
    print("Figure 1 database, with the second payment's oid replaced by a null:")
    print(incomplete.to_text())

    cases = [
        ("unpaid orders", UNPAID_ORDERS_SQL, unpaid_orders_algebra()),
        (
            "customers without a paid order",
            CUSTOMERS_WITHOUT_PAID_ORDER_SQL,
            customers_without_paid_order_algebra(),
        ),
        ("oid = 'o2' OR oid <> 'o2'", TAUTOLOGY_SQL, tautology_algebra()),
    ]

    table = ResultTable(
        "SQL vs certainty on Figure 1 (single NULL in Payments)",
        ["query", "SQL on complete D", "SQL with NULL", "certain answers", "Q+", "Q+ quality"],
    )
    for name, sql_text, algebra_query in cases:
        sql_complete = run_sql(complete, sql_text)
        sql_null = run_sql(incomplete, sql_text)
        certain = certain_answers_with_nulls(algebra_query, incomplete)
        plus = evaluate(
            translate_guagliardo16(algebra_query, incomplete.schema()).certain, incomplete
        )
        quality = compare_answers(plus, certain)
        table.add_row(
            name,
            sorted(sql_complete.rows_set()),
            sorted(sql_null.rows_set()),
            sorted(map(str, certain.rows_set())),
            sorted(map(str, plus.rows_set())),
            f"P={quality.precision:.0%} R={quality.recall:.0%}",
        )
    table.print()

    print(
        "\nReading the table: the NULL makes SQL drop the certain-looking answer"
        "\no3 (false negative), invent c2 (false positive), and miss the certain"
        "\nanswer c2 of the tautology-like query — exactly the paper's Section 1."
    )


if __name__ == "__main__":
    main()
