"""The paper's Figure 1 scenario: how a single NULL breaks SQL answers.

Reproduces Section 1 of the paper end to end through the engine façade:
two sessions (complete and incomplete database), the three SQL queries,
and the comparison of SQL's answers against certain answers and the
sound Q+ approximation — every regime reached via ``session.evaluate``.

Run with:  python examples/figure1_false_answers.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Session
from repro.approx import compare_answers
from repro.bench import ResultTable
from repro.workloads import figure1_cases, figure1_database, figure1_database_with_null


def main() -> None:
    with Session(figure1_database()) as complete:
        incomplete = complete.with_database(figure1_database_with_null())
        print("Figure 1 database, with the second payment's oid replaced by a null:")
        print(incomplete.database.to_text())

        table = ResultTable(
            "SQL vs certainty on Figure 1 (single NULL in Payments)",
            ["query", "SQL on complete D", "SQL with NULL", "certain answers", "Q+", "Q+ quality"],
        )
        for case in figure1_cases():
            sql_complete = complete.sql(case.sql)
            sql_null = incomplete.sql(case.sql)
            certain = incomplete.certain(case.algebra)
            plus = incomplete.evaluate(case.algebra, strategy="approx-guagliardo16")
            quality = compare_answers(plus.relation, certain.relation)
            table.add_row(
                case.name,
                sorted(sql_complete.rows_set()),
                sorted(sql_null.rows_set()),
                sorted(map(str, certain.rows_set())),
                sorted(map(str, plus.certain_rows())),
                f"P={quality.precision:.0%} R={quality.recall:.0%}",
            )
        table.print()

        print(
            "\nReading the table: the NULL makes SQL drop the certain-looking answer"
            "\no3 (false negative), invent c2 (false positive), and miss the certain"
            "\nanswer c2 of the tautology-like query — exactly the paper's Section 1."
        )


if __name__ == "__main__":
    main()
