"""Quickstart: querying an incomplete database correctly.

Builds a small database with marked nulls, opens an engine
:class:`~repro.engine.Session` on it, and runs one query four ways —
SQL-style evaluation, naïve evaluation, the sound Q+ rewriting and exact
certain answers — through the single ``session.evaluate`` call, showing
where the strategies differ.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Database, Null, Session, builder as rb
from repro.algebra import to_text
from repro.bench import strategy_table


def main() -> None:
    # A tiny orders database where one delivery destination is unknown.
    unknown_city = Null("city_of_o2")
    db = Database.from_dict(
        {
            "orders": (
                ("oid", "city"),
                [("o1", "Lyon"), ("o2", unknown_city), ("o3", "Paris")],
            ),
            "hubs": (("city",), [("Lyon",), ("Paris",)]),
        }
    )
    print("The database:")
    print(db.to_text())

    # Orders shipped to a city with no hub: orders − (orders ⋉ hubs).
    orders_city = rb.project(rb.relation("orders"), ["oid", "city"])
    with_hub = rb.project(
        rb.select(
            rb.product(
                rb.relation("orders"), rb.rename(rb.relation("hubs"), {"city": "hub_city"})
            ),
            rb.eq("city", "hub_city"),
        ),
        ["oid", "city"],
    )
    query = rb.difference(orders_city, with_hub)
    print("\nThe query (orders shipped outside every hub city):")
    print(" ", to_text(query))

    # One session, one API — the strategy name picks the evaluation regime.
    with Session(db) as session:

        print("\n1. SQL-style evaluation (what a DBMS would return):")
        sql = session.evaluate(
            "SELECT oid FROM orders WHERE city NOT IN (SELECT city FROM hubs)",
            strategy="sql-3vl",
        )
        print(sql.to_text())

        print("\n2. Naïve evaluation (nulls as plain values):")
        naive = session.evaluate(query, strategy="naive")
        print(naive.to_text())

        print("\n3. Sound approximation Q+ (never returns a non-certain tuple):")
        approx = session.evaluate(query, strategy="approx-guagliardo16")
        print(approx.to_text())
        print("\n   ...and the possible answers Q?:")
        print(approx.possible.to_text())

        print("\n4. Exact certain answers (exponential reference algorithm):")
        exact = session.evaluate(query, strategy="exact-certain")
        print(exact.to_text())

        print("\nAsking again is free — the session cache remembers:")
        again = session.evaluate(query, strategy="exact-certain")
        print(f"  from_cache={again.from_cache}  ({session.cache_stats})")

        # Or ask for everything at once: session.compare runs every strategy
        # that can consume this frontend and strategy_table renders the map.
        strategy_table(
            "All certainty-aware strategies on the same query", session.compare(query)
        ).print()

        print(
            "\nTakeaway: o2's city is unknown, so o2 is not a certain answer; the"
            "\nsound procedures leave it out, while naïve/SQL evaluation guesses."
        )


if __name__ == "__main__":
    main()
