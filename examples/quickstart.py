"""Quickstart: querying an incomplete database correctly.

Builds a small database with marked nulls, runs a query four ways —
SQL-style evaluation, naïve evaluation, the sound Q+ rewriting and exact
certain answers — and shows where they differ.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algebra import builder as rb, evaluate, to_text
from repro.approx import translate_guagliardo16
from repro.datamodel import Database, Null
from repro.incomplete import certain_answers_with_nulls, naive_evaluate_direct
from repro.sql import run_sql


def main() -> None:
    # A tiny orders database where one delivery destination is unknown.
    unknown_city = Null("city_of_o2")
    db = Database.from_dict(
        {
            "orders": (
                ("oid", "city"),
                [("o1", "Lyon"), ("o2", unknown_city), ("o3", "Paris")],
            ),
            "hubs": (("city",), [("Lyon",), ("Paris",)]),
        }
    )
    print("The database:")
    print(db.to_text())

    # Orders shipped to a city with no hub: orders − (orders ⋉ hubs).
    orders_city = rb.project(rb.relation("orders"), ["oid", "city"])
    with_hub = rb.project(
        rb.select(
            rb.product(
                rb.relation("orders"), rb.rename(rb.relation("hubs"), {"city": "hub_city"})
            ),
            rb.eq("city", "hub_city"),
        ),
        ["oid", "city"],
    )
    query = rb.difference(orders_city, with_hub)
    print("\nThe query (orders shipped outside every hub city):")
    print(" ", to_text(query))

    print("\n1. SQL-style evaluation (what a DBMS would return):")
    print(
        run_sql(
            db,
            "SELECT oid FROM orders WHERE city NOT IN (SELECT city FROM hubs)",
        ).to_text()
    )

    print("\n2. Naïve evaluation (nulls as plain values):")
    print(naive_evaluate_direct(query, db).to_text())

    print("\n3. Sound approximation Q+ (never returns a non-certain tuple):")
    pair = translate_guagliardo16(query, db.schema())
    print(evaluate(pair.certain, db).to_text())
    print("\n   ...and the possible answers Q?:")
    print(evaluate(pair.possible, db).to_text())

    print("\n4. Exact certain answers (exponential reference algorithm):")
    print(certain_answers_with_nulls(query, db).to_text())

    print(
        "\nTakeaway: o2's city is unknown, so o2 is not a certain answer; the"
        "\nsound procedures leave it out, while naïve/SQL evaluation guesses."
    )


if __name__ == "__main__":
    main()
