"""Almost-certain answers and conditioning on constraints (Section 4.3).

Shows the 0–1 law in action (µ_k converging to 1 for naïve answers and
to 0 for everything else), and how integrity constraints change the
picture: under the inclusion constraint S ⊆ T the probability of an
answer can be a non-trivial rational such as 1/2, and functional
dependencies collapse it back to 0 or 1 through the chase.

Run with:  python examples/probabilistic_answers.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Database, Null, Session, builder as rb
from repro.bench import ResultTable
from repro.constraints import FunctionalDependency, InclusionDependency
from repro.probabilistic import conditional_mu, mu_k_profile, mu_limit


def main() -> None:
    unknown = Null("paid_order")
    db = Database.from_dict(
        {"T": (("A",), [(1,), (2,)]), "S": (("A",), [(unknown,)])}
    )
    with Session(db) as session:
        query = rb.difference(rb.relation("T"), rb.relation("S"))
        print("Database: T = {1, 2}, S = {⊥};  query: T − S, candidate answer (1,).")

        table = ResultTable("µ_k for the candidate answer (1,)", ["k", "µ_k"])
        for k, value in mu_k_profile(query, db, (1,), [3, 4, 6, 10, 20]):
            table.add_row(k, f"{value} ≈ {float(value):.3f}")
        table.print()
        print(f"\nLimit by the 0–1 law: µ = {mu_limit(query, db, (1,))}")
        certain = session.certain(query)
        print(f"Exact certain answers: {sorted(certain.rows_set())}")
        print("So (1,) is almost certainly true, yet not certain.")

        ind = InclusionDependency("S", ["A"], "T", ["A"])
        print(
            f"\nConditioning on S ⊆ T (the null must be 1 or 2): "
            f"µ(Q | Σ, D, (1,)) = {conditional_mu(query, [ind], db, (1,))}"
        )

        fd_db = Database.from_dict({"R": (("A", "B"), [(1, Null("b")), (1, 5)])})
        fd = FunctionalDependency("R", ["A"], ["B"])
        projection = rb.project(rb.relation("R"), ["B"])
        print(
            "With only functional dependencies the limit is 0 or 1 via the chase: "
            f"µ(π_B R | A→B, D, (5,)) = {conditional_mu(projection, [fd], fd_db, (5,))}"
        )


if __name__ == "__main__":
    main()
