"""``strategy="auto"``: let the engine pick the evaluation regime.

Theorem 4.4 makes naïve evaluation *exact* on CQ/UCQ/Pos∀G queries, so
the engine can choose it there and fall back to the sound Figure 2b
approximation (or exact certain answers, under a size budget) elsewhere
— instead of making the caller guess.  This example runs three queries
through ``session.auto(...)``, prints the recorded
``metadata["plan"]`` decision for each, shows the capability table that
drives the planner, and finishes with a persistent disk cache that
survives into a second session.

Run with:  python examples/auto_strategy.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Database, Null, Session, builder as rb
from repro.algebra import to_text


def main() -> None:
    # A tiny orders database where one delivery destination is unknown.
    unknown_city = Null("city_of_o2")
    db = Database.from_dict(
        {
            "orders": (
                ("oid", "city"),
                [("o1", "Lyon"), ("o2", unknown_city), ("o3", "Paris")],
            ),
            "hubs": (("city",), [("Lyon",), ("Paris",)]),
        }
    )
    print("The database:")
    print(db.to_text())

    # A conjunctive query (orders delivered to a hub city), and a
    # negation-bearing one (orders delivered outside every hub city).
    hub_orders = rb.project(
        rb.select(
            rb.product(
                rb.relation("orders"),
                rb.rename(rb.relation("hubs"), {"city": "hub_city"}),
            ),
            rb.eq("city", "hub_city"),
        ),
        ["oid"],
    )
    off_hub_orders = rb.difference(
        rb.project(rb.relation("orders"), ["oid"]), hub_orders
    )

    with Session(db) as session:
        for label, query in (
            ("CQ: orders delivered to a hub city", hub_orders),
            ("with negation: orders outside every hub city", off_hub_orders),
        ):
            print(f"\n{label}")
            print(" ", to_text(query))
            result = session.auto(query)
            plan = result.metadata["plan"]
            print(f"  chosen:    {plan['strategy']}  (guarantee: {plan['guarantee']})")
            print(f"  fragment:  {plan['fragment']}")
            print(f"  reason:    {plan['reason']}")
            print(f"  answer:    {sorted(result.relation.rows_set())}")

        # Why did auto choose that?  The capability table says.
        print("\nThe capability table the planner consults:")
        for name, caps in session.describe()["strategies"].items():
            exact_on = ",".join(caps["exact_on"]) or "-"
            bounds = (
                "exact"
                if caps["sound"] and caps["complete"]
                else "sound" if caps["sound"] else "none"
            )
            print(
                f"  {name:<20} semantics={'/'.join(caps['semantics']):<7} "
                f"exact_on={exact_on:<12} bounds={bounds:<6} cost={caps['cost']}"
            )

    # A disk cache backend makes results survive the session (and the
    # process): the second session hits without re-evaluating.
    cache_dir = tempfile.mkdtemp(prefix="repro-cache-")
    print(f"\nPersistent cache at {cache_dir}:")
    with Session(db, cache=f"disk:{cache_dir}") as first:
        cold = first.auto(hub_orders)
        print(f"  first session:  from_cache={cold.from_cache}")
    with Session(db, cache=f"disk:{cache_dir}") as second:
        warm = second.auto(hub_orders)
        print(f"  second session: from_cache={warm.from_cache}")
        assert warm.from_cache
        assert warm.relation.rows_set() == cold.relation.rows_set()


if __name__ == "__main__":
    main()
