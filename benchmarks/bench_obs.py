"""E21 — Observability overhead and the EXPLAIN profile.

The observability layer (`repro.obs`) promises to be free when nobody
is looking: with ``trace=False`` (the default) no span objects are
allocated, and the metrics hooks are one counter bump per query phase.
Two questions:

1. **Disabled overhead** — on E19's chain-join workload, how much does
   an evaluation with observability in its default state (tracing off,
   metrics on) cost over a build with metrics gated off too?  Target:
   within 5% — indistinguishable from timer jitter on this workload.
   The traced cost is also reported (spans are per-phase, not per-row,
   so it stays small, but it is *allowed* to cost something).
2. **EXPLAIN profile** — ``session.explain()`` on a sharded
   ``strategy="auto"`` query must render the plan decision, the backend
   resolution and the span tree (fan-out with per-shard children) in
   one report.

Run under pytest (``python -m pytest benchmarks/bench_obs.py``) or
directly as a script::

    python benchmarks/bench_obs.py            # full workload
    python benchmarks/bench_obs.py --smoke    # tiny config for CI
"""

from __future__ import annotations

import os
import pathlib
import sys
import time

# Script mode (`python benchmarks/bench_obs.py --smoke`) runs without
# the conftest path hook; mirror it so `import repro` works.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# E21 reuses E19's workload so "overhead on the backend benchmark's
# query" means exactly that (both pytest and script mode put
# ``benchmarks/`` on sys.path, so the sibling module imports cleanly).
from bench_backend import _chain_database, _chain_join_query

from repro.bench import BenchReport, ResultTable, median
from repro.engine import Engine, Session
from repro.obs import metrics_enabled, set_metrics_enabled

FULL_ROWS = 1_200
SMOKE_ROWS = 300

#: Like E12's guard, the assertion bounds a *regression* (observability
#: cost becoming comparable to evaluation), not timer jitter on a busy
#: CI runner; the 5% target is what the table shows on an unloaded
#: machine.  Tighten locally via REPRO_E21_MAX_OVERHEAD.
MAX_DISABLED_OVERHEAD = float(os.environ.get("REPRO_E21_MAX_OVERHEAD", "25.0"))


def _sample_ms(func, trials: int) -> float:
    times = []
    for _ in range(trials):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return median(times) * 1e3


def run_overhead(rows: int, *, smoke: bool, report: BenchReport | None = None) -> None:
    database = _chain_database(rows)
    query = _chain_join_query()
    trials = 5 if smoke else 9
    # The interpreter keeps the measured region purely in-process Python
    # — SQLite encode/decode would drown the few microseconds at stake.
    with Engine(backend="interpreter") as engine:
        def run(**kwargs):
            return engine.evaluate(
                query, database, strategy="naive", use_cache=False, **kwargs
            )

        untraced = run()
        traced_result = run(trace=True)
        assert traced_result.relation.rows_bag() == untraced.relation.rows_bag(), (
            "tracing changed the answer"
        )
        assert "trace" in traced_result.metadata and "trace" not in untraced.metadata

        assert metrics_enabled()
        set_metrics_enabled(False)
        try:
            base_ms = _sample_ms(run, trials)
        finally:
            set_metrics_enabled(True)
        disabled_ms = _sample_ms(run, trials)
        traced_ms = _sample_ms(lambda: run(trace=True), trials)

    overhead_pct = (disabled_ms - base_ms) / base_ms * 100.0
    traced_pct = (traced_ms - base_ms) / base_ms * 100.0
    table = ResultTable(
        f"E21: observability overhead on the E19 chain join (|R| = {rows})",
        ["configuration", "median (ms)", "vs no-obs baseline"],
    )
    table.add_row("metrics off, trace off", base_ms, "baseline")
    table.add_row("default (metrics on, trace off)", disabled_ms, f"{overhead_pct:+.1f}%")
    table.add_row("trace=True", traced_ms, f"{traced_pct:+.1f}%")
    table.print()
    if report is not None:
        report.record("no-obs baseline", median_ms=base_ms)
        report.record("default", median_ms=disabled_ms, overhead_pct=overhead_pct)
        report.record("traced", median_ms=traced_ms, overhead_pct=traced_pct)
        report.summarize(
            disabled_overhead_pct=overhead_pct,
            traced_overhead_pct=traced_pct,
            overhead_ceiling_pct=MAX_DISABLED_OVERHEAD,
        )
    assert overhead_pct < MAX_DISABLED_OVERHEAD, (
        f"disabled observability costs {overhead_pct:+.1f}% over the no-obs "
        f"baseline, above the {MAX_DISABLED_OVERHEAD:.0f}% ceiling "
        "(REPRO_E21_MAX_OVERHEAD)"
    )


def run_explain_profile(*, smoke: bool, report: BenchReport | None = None) -> None:
    """One ``session.explain()`` profile of a sharded auto-planned query."""
    database = _chain_database(SMOKE_ROWS if smoke else 600)
    query = _chain_join_query()
    with Session(database, shards=2) as session:
        start = time.perf_counter()
        text = session.explain(query, strategy="auto", use_cache=False)
        elapsed_ms = (time.perf_counter() - start) * 1e3
    print()
    print(text)
    for needle in ("EXPLAIN", "plan:", "shard.fanout", "shard[0]", "shard[1]", "shard.merge"):
        assert needle in text, f"explain output is missing {needle!r}:\n{text}"
    if report is not None:
        report.record(
            "explain", elapsed_ms=elapsed_ms, lines=text.count("\n") + 1
        )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_observability_overhead(bench_report):
    bench_report.smoke = True
    run_overhead(SMOKE_ROWS, smoke=True, report=bench_report)


def test_explain_profile(bench_report):
    bench_report.smoke = True
    run_explain_profile(smoke=True, report=bench_report)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="E21 observability benchmark")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workload (wiring and ceiling checks only)",
    )
    args = parser.parse_args()
    rows = SMOKE_ROWS if args.smoke else FULL_ROWS
    report = BenchReport("obs", smoke=args.smoke)
    run_overhead(rows, smoke=args.smoke, report=report)
    run_explain_profile(smoke=args.smoke, report=report)
    print(f"\nwrote {report.write()}")
    print("E21 ok" + (" (smoke)" if args.smoke else ""))
