"""E13 — Shard-count scaling on the TPC-H-lite workload.

Three questions about the sharded evaluation path (`repro.sharding`):

1. **Scaling** — how does wall-clock change with the shard count, for
   the serial and the process executor?  On a multi-core machine the
   process executor at N shards should beat single-shard evaluation on
   the product-heavy queries (``q_localsupp`` is a four-way join whose
   partitioned lineage splits the Cartesian work N ways); on a single
   core it degenerates gracefully to serial-plus-overhead.
2. **Incremental invalidation** — after appending one row to one shard,
   re-evaluation recomputes only that shard's partial (the other
   partials are served from the per-shard cache), so it must beat a
   full monolithic re-evaluation on *any* machine.
3. **Correctness under load** — every sharded result in the sweep is
   compared tuple-for-tuple against monolithic evaluation.

Run under pytest (``python -m pytest benchmarks/bench_sharding.py``) or
directly as a script::

    python benchmarks/bench_sharding.py            # full sweep
    python benchmarks/bench_sharding.py --smoke    # tiny config for CI
"""

from __future__ import annotations

import os
import pathlib
import sys

# Script mode (`python benchmarks/bench_sharding.py --smoke`) runs
# without the conftest path hook; mirror it so `import repro` works.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import ResultTable, time_call
from repro.engine import Engine
from repro.sharding import RoundRobinPartitioner, ShardedDatabase
from repro.workloads import TpchLiteConfig, generate_tpch_lite, tpch_lite_queries

#: Full-size config: q_localsupp is a ~2 s four-way join, big enough for
#: the parallel win to dominate process-pool overhead.
CONFIG = TpchLiteConfig(
    customers=20, orders=40, lineitems=60, suppliers=8, null_rate=0.05
)
#: Smoke config: the seed defaults (~0.2 s), for CI wiring checks.
SMOKE_CONFIG = TpchLiteConfig(null_rate=0.05)

SHARD_COUNTS = (1, 2, 4)
QUERIES = ("q_localsupp", "q_join")
#: Round-robin gives near-perfectly balanced fragments, which is what a
#: scaling experiment wants (hash placement is the default elsewhere).
PARTITIONER = RoundRobinPartitioner


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_scaling(config: TpchLiteConfig, *, smoke: bool, repeat: int = 1) -> None:
    database = generate_tpch_lite(config)
    queries = tpch_lite_queries()
    with Engine() as engine:
        table = ResultTable(
            "E13: shard-count scaling on TPC-H-lite (naïve strategy)",
            ["query", "shards", "serial (ms)", "process (ms)", "speedup vs 1 shard"],
        )
        parallel_wins: list[tuple[str, float, float]] = []
        for name in QUERIES:
            query = queries[name]
            mono = engine.evaluate(query, database, strategy="naive", use_cache=False)
            single_shard_seconds = None
            for shards in SHARD_COUNTS:
                sharded = ShardedDatabase.from_database(database, shards, PARTITIONER())
                timings = {}
                for executor in ("serial", "process"):
                    seconds, result = time_call(
                        lambda: engine.evaluate(
                            query,
                            sharded,
                            strategy="naive",
                            use_cache=False,
                            executor=executor,
                        ),
                        repeat=repeat,
                    )
                    assert result.metadata["sharding"]["mode"] == "distributed"
                    assert result.relation.rows_bag() == mono.relation.rows_bag(), (
                        f"{name} @ {shards} shards ({executor}): sharded result "
                        "differs from monolithic"
                    )
                    timings[executor] = seconds
                if shards == 1:
                    single_shard_seconds = timings["serial"]
                speedup = single_shard_seconds / timings["process"]
                table.add_row(
                    name,
                    shards,
                    timings["serial"] * 1e3,
                    timings["process"] * 1e3,
                    f"{speedup:.2f}x",
                )
                if shards == max(SHARD_COUNTS):
                    parallel_wins.append((name, single_shard_seconds, timings["process"]))
        table.print()

        cpus = _cpu_count()
        print(f"\ncpus available: {cpus}")
        if smoke or cpus < 2:
            print("(parallel speedup assertion skipped: smoke mode or single core)")
            return
        # Acceptance: parallel shard execution beats single-shard wall-clock
        # on the big product query.
        name, single, parallel = next(w for w in parallel_wins if w[0] == "q_localsupp")
        assert parallel < single, (
            f"{name}: process executor at {max(SHARD_COUNTS)} shards "
            f"({parallel * 1e3:.0f} ms) did not beat single-shard "
            f"({single * 1e3:.0f} ms) on {cpus} cpus"
        )


def run_incremental(config: TpchLiteConfig, *, smoke: bool) -> None:
    database = generate_tpch_lite(config)
    query = tpch_lite_queries()["q_localsupp"]
    shards = 4
    with Engine() as engine:
        sharded = ShardedDatabase.from_database(database, shards)
        warm = engine.evaluate(query, sharded, strategy="naive")
        assert warm.metadata["sharding"]["partial_cache_hits"] == 0

        mutated = sharded.add_rows(
            "customer", [("c9999", "Customer#9999", "n1", 42.0)]
        )
        incremental_seconds, result = time_call(
            lambda: engine.evaluate(query, mutated, strategy="naive"), repeat=1
        )
        hits = result.metadata["sharding"]["partial_cache_hits"]
        monolithic_seconds, mono = time_call(
            lambda: engine.evaluate(
                query, mutated, strategy="naive", shards=0, use_cache=False
            ),
            repeat=1,
        )
        assert result.relation.rows_bag() == mono.relation.rows_bag()

        table = ResultTable(
            "E13: per-shard cache invalidation after a one-shard append",
            ["evaluation", "wall (ms)", "partials recomputed"],
        )
        table.add_row("monolithic re-eval", monolithic_seconds * 1e3, shards)
        table.add_row("sharded re-eval", incremental_seconds * 1e3, shards - hits)
        table.print()
        assert hits == shards - 1, f"expected {shards - 1} cached partials, got {hits}"
        if not smoke:
            # Recomputing 1/N of the work must beat recomputing all of it,
            # single core or not.
            assert incremental_seconds < monolithic_seconds, (
                f"incremental re-eval ({incremental_seconds * 1e3:.0f} ms) "
                f"not faster than monolithic ({monolithic_seconds * 1e3:.0f} ms)"
            )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_shard_scaling():
    run_scaling(CONFIG, smoke=False)


def test_incremental_invalidation_beats_full_recompute():
    run_incremental(CONFIG, smoke=False)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="E13 sharding benchmark")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, correctness checks only (CI wiring)",
    )
    args = parser.parse_args()
    config = SMOKE_CONFIG if args.smoke else CONFIG
    run_scaling(config, smoke=args.smoke)
    run_incremental(config, smoke=args.smoke)
    print("\nE13 ok" + (" (smoke)" if args.smoke else ""))
