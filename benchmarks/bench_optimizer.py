"""E15 — Plan optimizer: hash equi-joins vs materialised products.

Three questions about the rule-based optimizer (`repro.algebra.optimize`,
PR 4):

1. **Selective joins** — on ``σ_{b=c ∧ a=v}(R × S)`` the unoptimized
   evaluator materialises the |R|·|S| Cartesian product and filters;
   the optimizer pushes the point selection into ``R`` and turns the
   cross-column equality into a hash :class:`~repro.algebra.EquiJoin`.
   Acceptance: **≥ 5x** wall-clock at the full workload size.
2. **Translated plans** — the Figure 2b (Q+, Q?) pair inherits the same
   ``Selection(Product)`` shape, so ``approx-guagliardo16`` must speed
   up as well; the Figure 2a (Qt, Qf) pair additionally builds ``Dom^k``
   towers, which the optimizer constrains via
   :class:`~repro.algebra.ConstrainedDomainRelation`.
3. **Zero result changes** — every optimized result in the sweep is
   compared tuple-for-tuple against its unoptimized twin (the
   randomized harness in ``tests/test_optimizer_equivalence.py`` does
   this exhaustively; the benchmark re-checks it at benchmark scale).

Run under pytest (``python -m pytest benchmarks/bench_optimizer.py``) or
directly as a script::

    python benchmarks/bench_optimizer.py            # full sweep (asserts ≥5x)
    python benchmarks/bench_optimizer.py --smoke    # tiny config for CI
                                                    # (asserts optimized ≤ unoptimized)
"""

from __future__ import annotations

import pathlib
import random
import sys

# Script mode (`python benchmarks/bench_optimizer.py --smoke`) runs
# without the conftest path hook; mirror it so `import repro` works.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import Database, Engine, Null, Relation
from repro.algebra import builder as rb
from repro.algebra.conditions import And, Attr, Eq
from repro.bench import ResultTable, time_call

#: Full-size config: a 300×300 product is ~90k rows unoptimized, big
#: enough that the hash join's asymptotic win dominates fixed overhead.
FULL_ROWS = 300
#: Smoke config: CI wiring check only.
SMOKE_ROWS = 60
#: The Figure 2a case stays small: its Qf side ranges over Dom^4.
LIBKIN_ROWS = 10

SPEEDUP_FLOOR = 5.0


def _join_database(rows: int, *, null_rate: float = 0.02, seed: int = 7) -> Database:
    rng = random.Random(seed)
    domain = [f"v{i}" for i in range(max(8, rows // 4))]

    def cell(prefix: str, i: int):
        if rng.random() < null_rate:
            return Null(f"{prefix}{i}")
        return rng.choice(domain)

    r_rows = [(cell("ra", i), cell("rb", i)) for i in range(rows)]
    s_rows = [(cell("sc", i), cell("sd", i)) for i in range(rows)]
    return Database({"R": Relation(("a", "b"), r_rows), "S": Relation(("c", "d"), s_rows)})


def _selective_join_query():
    """σ_{a='v1' ∧ b=c}(R × S): one pushable point selection, one join key."""
    return rb.select(
        rb.product(rb.relation("R"), rb.relation("S")),
        And(Eq(Attr("a"), Attr("a")), And(Eq(Attr("b"), Attr("c")), Eq(Attr("a"), rb.lit("v1")))),
    )


def _assert_identical(plain, fast, label: str) -> None:
    assert plain.relation.rows_bag() == fast.relation.rows_bag(), (
        f"{label}: optimized result differs from unoptimized"
    )
    for side in ("certain", "possible", "certainly_false"):
        a, b = getattr(plain, side), getattr(fast, side)
        assert (a is None) == (b is None), f"{label}: {side} presence differs"
        if a is not None:
            assert a.rows_set() == b.rows_set(), f"{label}: {side} differs"


def run_join_speedup(rows: int, *, smoke: bool) -> None:
    database = _join_database(rows)
    query = _selective_join_query()
    table = ResultTable(
        f"E15: optimizer on σ(R × S), |R| = |S| = {rows}",
        ["strategy", "unoptimized (ms)", "optimized (ms)", "speedup"],
    )
    speedups: dict[str, float] = {}
    # This experiment measures the *plan optimizer*, so both sides run
    # on the interpreter: under the default backend="auto" the SQLite
    # pushdown executes even the unoptimized σ(×) as a hash join (its
    # own planner rewrites the WHERE comma join) and flattens the very
    # difference being measured.  E19 (bench_backend.py) owns the
    # backend comparison.
    with Engine(backend="interpreter") as engine:
        for strategy in ("naive", "approx-guagliardo16"):
            plain_seconds, plain = time_call(
                lambda s=strategy: engine.evaluate(
                    query, database, strategy=s, optimize=False, use_cache=False
                ),
                repeat=1,
            )
            fast_seconds, fast = time_call(
                lambda s=strategy: engine.evaluate(
                    query, database, strategy=s, optimize=True, use_cache=False
                ),
                repeat=1,
            )
            _assert_identical(plain, fast, strategy)
            speedups[strategy] = plain_seconds / fast_seconds
            table.add_row(
                strategy,
                plain_seconds * 1e3,
                fast_seconds * 1e3,
                f"{speedups[strategy]:.1f}x",
            )
    table.print()
    if smoke:
        # CI wiring check: the optimizer must never lose on its home turf.
        assert speedups["naive"] >= 1.0, (
            f"optimized naive evaluation slower than unoptimized "
            f"({speedups['naive']:.2f}x) on the E15 selective-join workload"
        )
        return
    assert speedups["naive"] >= SPEEDUP_FLOOR, (
        f"naive σ(R × S) speedup {speedups['naive']:.1f}x below the "
        f"{SPEEDUP_FLOOR}x acceptance floor"
    )
    assert speedups["approx-guagliardo16"] >= SPEEDUP_FLOOR, (
        f"(Q+, Q?) σ(R × S) speedup {speedups['approx-guagliardo16']:.1f}x "
        f"below the {SPEEDUP_FLOOR}x acceptance floor"
    )


def run_domain_constraining(*, smoke: bool) -> None:
    """Figure 2a: Qf ranges over Dom^k; the optimizer prunes its enumeration."""
    database = _join_database(LIBKIN_ROWS, null_rate=0.1, seed=11)
    query = rb.select(
        rb.product(rb.relation("R"), rb.relation("S")), Eq(Attr("b"), Attr("c"))
    )
    table = ResultTable(
        "E15: Figure 2a (Qt, Qf) with Dom^4 towers",
        ["strategy", "unoptimized (ms)", "optimized (ms)", "speedup"],
    )
    with Engine() as engine:
        plain_seconds, plain = time_call(
            lambda: engine.evaluate(
                query, database, strategy="approx-libkin16",
                optimize=False, use_cache=False,
            ),
            repeat=1,
        )
        fast_seconds, fast = time_call(
            lambda: engine.evaluate(
                query, database, strategy="approx-libkin16",
                optimize=True, use_cache=False,
            ),
            repeat=1,
        )
    _assert_identical(plain, fast, "approx-libkin16")
    speedup = plain_seconds / fast_seconds
    table.add_row(
        "approx-libkin16", plain_seconds * 1e3, fast_seconds * 1e3, f"{speedup:.1f}x"
    )
    table.print()
    if not smoke:
        assert speedup >= 1.0, (
            f"optimized (Qt, Qf) evaluation slower ({speedup:.2f}x) than unoptimized"
        )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_selective_join_speedup():
    run_join_speedup(FULL_ROWS, smoke=False)


def test_domain_constraining():
    run_domain_constraining(smoke=False)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="E15 optimizer benchmark")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, correctness + no-regression checks only (CI wiring)",
    )
    args = parser.parse_args()
    run_join_speedup(SMOKE_ROWS if args.smoke else FULL_ROWS, smoke=args.smoke)
    run_domain_constraining(smoke=args.smoke)
    print("\nE15 ok" + (" (smoke)" if args.smoke else ""))
