"""E4 — Overhead of the (Q+, Q?) rewriting on the TPC-H-lite workload.

The PODS'16 feasibility study [37] reports that the rewritten queries
cost only a few percent more than the original SQL queries on TPC-H,
with larger overheads when disjunctions confuse the optimizer.  Here the
same *shape* is measured on our evaluator: the Q+ rewriting of each
TPC-H-lite query against the plain (naïve) evaluation of the original.
Absolute numbers differ (pure-Python engine), but Q+ should stay within
a small factor of the original for join/selection queries and be most
expensive for the difference-heavy ones (extra unification anti-joins).
"""

from __future__ import annotations

import pytest

from repro.algebra import evaluate
from repro.approx import translate_guagliardo16
from repro.bench import ResultTable, relative_overhead, time_call
from repro.workloads import TpchLiteConfig, generate_tpch_lite, tpch_lite_queries

DB = generate_tpch_lite(
    TpchLiteConfig(
        customers=8, orders=16, lineitems=24, suppliers=4, parts=8, null_rate=0.03
    )
)
SCHEMA = DB.schema()
QUERIES = tpch_lite_queries()


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_rewriting_overhead_per_query(benchmark, name):
    query = QUERIES[name]
    pair = translate_guagliardo16(query, SCHEMA)
    benchmark(lambda: evaluate(pair.certain, DB))


def test_overhead_summary_table(benchmark):
    def measure():
        rows = []
        for name, query in sorted(QUERIES.items()):
            pair = translate_guagliardo16(query, SCHEMA)
            base_time, base = time_call(lambda q=query: evaluate(q, DB))
            plus_time, plus = time_call(lambda p=pair: evaluate(p.certain, DB))
            rows.append(
                (
                    name,
                    base_time * 1000,
                    plus_time * 1000,
                    relative_overhead(base_time, plus_time),
                    len(base),
                    len(plus),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = ResultTable(
        "E4: Q+ rewriting overhead on TPC-H-lite (paper: 1-4% typical on TPC-H)",
        ["query", "original (ms)", "Q+ (ms)", "overhead %", "|Q(D)|", "|Q+(D)|"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()

    # Shape assertions: the rewriting never returns more tuples than the
    # original, and at least half of the workload stays within 3x.
    assert all(plus_count <= base_count for *_, base_count, plus_count in rows)
    cheap = sum(1 for _, base_ms, plus_ms, *_ in rows if plus_ms <= 3 * base_ms + 1.0)
    assert cheap >= len(rows) // 2
