"""E11 — The cost of exactness: valuation enumeration vs approximation.

Theorems 3.11/3.12 say exact certain answers are intractable (coNP-hard
under CWA); the reference implementation enumerates |pool|^|Null(D)|
valuations, so its cost grows exponentially with the number of nulls
while the Q+ rewriting stays polynomial.  The benchmark exhibits that
curve.
"""

from __future__ import annotations

import pytest

from repro.algebra import builder as rb, evaluate
from repro.approx import translate_guagliardo16
from repro.bench import ResultTable, time_call
from repro.datamodel import Database, Null, Relation
from repro.incomplete import certain_answers_with_nulls, constant_pool, count_valuations

NULL_COUNTS = (1, 2, 3, 4)
QUERY = rb.difference(rb.relation("R"), rb.relation("S"))


def _database(null_count: int) -> Database:
    nulls = [Null(f"e11_{i}") for i in range(null_count)]
    r_rows = [(i,) for i in range(4)]
    s_rows = [(n,) for n in nulls]
    return Database({"R": Relation(("A",), r_rows), "S": Relation(("A",), s_rows)})


@pytest.mark.parametrize("null_count", NULL_COUNTS)
def test_exact_certain_answers_cost(benchmark, null_count):
    db = _database(null_count)
    benchmark.pedantic(
        lambda: certain_answers_with_nulls(QUERY, db), rounds=2, iterations=1
    )


def test_exact_vs_approximate_summary(benchmark):
    def run():
        rows = []
        for null_count in NULL_COUNTS:
            db = _database(null_count)
            pool = constant_pool(db)
            valuations = count_valuations(db, pool)
            exact_time, _ = time_call(lambda: certain_answers_with_nulls(QUERY, db), repeat=1)
            pair = translate_guagliardo16(QUERY, db.schema())
            approx_time, _ = time_call(lambda: evaluate(pair.certain, db), repeat=1)
            rows.append((null_count, valuations, exact_time * 1000, approx_time * 1000))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = ResultTable(
        "E11: exact cert⊥ (valuation enumeration) vs Q+ rewriting",
        ["nulls in D", "valuations enumerated", "exact (ms)", "Q+ (ms)"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()

    # Shape: the valuation count explodes; the approximation does not track it.
    assert rows[-1][1] > 100 * rows[0][1]
    assert rows[-1][3] < rows[-1][2] or rows[-1][2] < 1.0
