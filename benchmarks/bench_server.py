"""E17 — Sustained server QPS under a zipf-skewed multi-tenant mix.

The server's pitch (see ``DESIGN.md``) is that one long-running process
amortises engine start-up and shares a result cache across many
concurrent clients.  E17 measures exactly that: an
:class:`~repro.server.EvalServer` on an ephemeral port, ≥ 4 concurrent
client connections replaying a zipf-skewed mix of the TPC-H-lite
queries (a few hot queries dominate, the tail stays cold — the shape
that makes result caching pay), reporting:

* sustained throughput (QPS over the whole run),
* client-observed latency p50 / p99 (and the server's own `/stats`
  percentiles for queue wait and execution),
* the cache hit rate of the run (must be non-zero: the hot queries
  repeat, so a working per-tenant cache turns them into hits),
* a leak check — after ``close()`` no worker process survives.

Run under pytest (``python -m pytest benchmarks/bench_server.py``) or
directly::

    python benchmarks/bench_server.py            # full sweep
    python benchmarks/bench_server.py --smoke    # tiny run for CI
"""

from __future__ import annotations

import multiprocessing
import pathlib
import random
import sys
import threading
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import ResultTable
from repro.server import EvalServer, ServerBusyError, ServerClient, ServerConfig
from repro.obs.metrics import percentile
from repro.workloads import TpchLiteConfig, generate_tpch_lite, tpch_lite_queries

#: Full-size run: a non-trivial database and enough requests per client
#: for the percentiles to mean something.
CONFIG = TpchLiteConfig(
    customers=20, orders=40, lineitems=60, suppliers=8, null_rate=0.05
)
REQUESTS_PER_CLIENT = 40
#: Smoke run: seed-scale database, a handful of requests (CI wiring).
SMOKE_CONFIG = TpchLiteConfig(null_rate=0.05)
SMOKE_REQUESTS = 10

CLIENTS = 4
TENANTS = ("acme", "acme", "globex", "globex")  # two tenants, two conns each
ZIPF_S = 1.1


def zipf_choices(names: list[str], count: int, *, seed: int) -> list[str]:
    """``count`` draws from ``names`` with zipf(s) rank weights."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(names))]
    return rng.choices(names, weights=weights, k=count)


def run_server_load(config: TpchLiteConfig, requests_per_client: int, *, smoke: bool) -> None:
    database = generate_tpch_lite(config)
    queries = tpch_lite_queries()
    names = sorted(queries)
    with EvalServer(
        ServerConfig(
            pool="thread",
            max_workers=2,
            max_concurrency=4,
            queue_limit=64,
            datasets={"tpch": database},
            queries=queries,
        )
    ) as server:
        host, port = server.address
        latencies: list[list[float]] = [[] for _ in range(CLIENTS)]
        failures: list[str] = []
        busy = [0] * CLIENTS
        start_barrier = threading.Barrier(CLIENTS + 1)

        def client_loop(index: int) -> None:
            mix = zipf_choices(names, requests_per_client, seed=1000 + index)
            with ServerClient(host, port, tenant=TENANTS[index]) as client:
                start_barrier.wait()
                for ref in mix:
                    begin = time.perf_counter()
                    try:
                        answer = client.query(query_ref=ref, db="tpch", strategy="auto")
                    except ServerBusyError:
                        busy[index] += 1
                        continue
                    except Exception as exc:  # noqa: BLE001 - recorded, asserted below
                        failures.append(f"client {index} ({ref}): {exc}")
                        return
                    latencies[index].append(time.perf_counter() - begin)
                    if not answer["result"]["attributes"]:
                        failures.append(f"client {index} ({ref}): empty schema")
                        return

        threads = [
            threading.Thread(target=client_loop, args=(i,), name=f"e17-client-{i}")
            for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        wall_start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        stats = server.stats()

    assert not failures, "client failures:\n" + "\n".join(failures)
    all_latencies = [sample for per_client in latencies for sample in per_client]
    completed = len(all_latencies)
    qps = completed / wall if wall > 0 else 0.0
    hit_rate = stats["cache"]["hit_rate"]

    table = ResultTable(
        f"E17: {CLIENTS} concurrent clients, zipf(s={ZIPF_S}) TPC-H-lite mix",
        ["metric", "value"],
    )
    table.add_row("requests completed", completed)
    table.add_row("wall clock (s)", f"{wall:.2f}")
    table.add_row("sustained QPS", f"{qps:.1f}")
    table.add_row("client p50 (ms)", f"{percentile(all_latencies, 50) * 1e3:.1f}")
    table.add_row("client p99 (ms)", f"{percentile(all_latencies, 99) * 1e3:.1f}")
    table.add_row("server queue-wait p99 (ms)", f"{stats['queue_wait']['p99'] * 1e3:.1f}")
    table.add_row("server execution p50 (ms)", f"{stats['execution']['p50'] * 1e3:.1f}")
    table.add_row("cache hit rate", f"{hit_rate:.2%}")
    table.add_row("429 rejections", sum(busy))
    table.print()
    print(f"strategies chosen: {stats['strategies']}")
    print(f"per-tenant cache: {stats['tenant_caches']}")

    # Acceptance: every client completed its mix, the server stayed up
    # for the whole run, and the hot queries actually hit the cache.
    assert completed == CLIENTS * requests_per_client - sum(busy)
    assert qps > 0.0
    assert hit_rate > 0.0, "zipf-skewed mix produced no cache hits"
    assert stats["requests"].get("error", 0) == 0
    # Leak check: `with` closed the server; nothing may survive it.
    assert multiprocessing.active_children() == [], "leaked worker processes"
    print("clean shutdown: no leaked workers")


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_server_sustained_load_smoke():
    run_server_load(SMOKE_CONFIG, SMOKE_REQUESTS, smoke=True)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="E17 server load benchmark")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, correctness checks only (CI wiring)",
    )
    args = parser.parse_args()
    if args.smoke:
        run_server_load(SMOKE_CONFIG, SMOKE_REQUESTS, smoke=True)
    else:
        run_server_load(CONFIG, REQUESTS_PER_CLIENT, smoke=False)
    print("\nE17 ok" + (" (smoke)" if args.smoke else ""))
