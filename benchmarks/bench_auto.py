"""E16 — The ``strategy="auto"`` planner and the persistent disk cache.

Two questions about the capability-driven front door:

1. **Planner quality** — on a mixed workload (Theorem 4.4 fragments and
   negation-bearing queries), is ``auto`` ever slower than the *worst*
   explicit certainty-bounded choice for the same query?  It must not
   be: auto picks naïve exactly where naïve is exact and the polynomial
   sound approximation otherwise, so per query it should track the
   best-or-near-best explicit strategy, while a caller guessing a fixed
   strategy pays the worst case somewhere in the mix.  (Planning
   overhead itself is microseconds of capability-table lookups.)
2. **Cross-session persistence** — with ``cache="disk:..."`` a *fresh
   process* re-running the workload gets cache hits (demonstrated by
   spawning a subprocess), turning repeat evaluation into file reads.

Run under pytest (``python -m pytest benchmarks/bench_auto.py``) or
directly as a script::

    python benchmarks/bench_auto.py            # full sweep
    python benchmarks/bench_auto.py --smoke    # tiny config for CI
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import tempfile
import textwrap

# Script mode (`python benchmarks/bench_auto.py --smoke`) runs without
# the conftest path hook; mirror it so `import repro` works.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import ResultTable, time_call
from repro.engine import Engine, StrategyNotApplicableError
from repro.workloads import GeneratorConfig, RelationSpec, generate_database
from repro.algebra import builder as rb
from repro.algebra.conditions import Attr, Eq, Literal

#: Certainty-bounded strategies a caller might plausibly hardcode; the
#: planner must never lose to the worst of the applicable ones.
EXPLICIT_CANDIDATES = ("naive", "approx-guagliardo16", "exact-certain")


def _database(rows: int) -> "Database":
    config = GeneratorConfig(
        relations=(
            RelationSpec("R", ("a", "b"), rows),
            RelationSpec("S", ("b", "c"), rows),
            RelationSpec("T", ("c",), max(2, rows // 4)),
        ),
        domain_size=max(4, rows // 2),
        null_rate=0.08,
        seed=20260728,
    )
    return generate_database(config)


def _queries() -> dict[str, "ra.Query"]:
    """A mixed workload: Theorem 4.4 fragments and negation."""
    r, s = rb.relation("R"), rb.relation("S")
    join = rb.select(
        rb.product(r, rb.rename(s, {"b": "b2", "c": "c2"})),
        Eq(Attr("b"), Attr("b2")),
    )
    return {
        "cq_select": rb.select(r, Eq(Attr("b"), Literal("v1"))),
        "cq_join": rb.project(join, ["a", "c2"]),
        "ucq_union": rb.union(rb.project(r, ["b"]), rb.project(s, ["b"])),
        "neg_difference": rb.difference(
            rb.project(r, ["b"]), rb.project(s, ["b"])
        ),
    }


def run_planner_quality(rows: int, *, smoke: bool) -> None:
    database = _database(rows)
    queries = _queries()
    table = ResultTable(
        "E16: auto vs explicit strategies (wall-clock per query)",
        ["query", "auto chose", "auto (ms)", "worst explicit (ms)", "best explicit (ms)"],
    )
    with Engine() as engine:
        for name, query in queries.items():
            auto_seconds, auto_result = time_call(
                lambda: engine.evaluate(query, database, strategy="auto", use_cache=False),
                repeat=1,
            )
            plan = auto_result.metadata["plan"]
            explicit: dict[str, float] = {}
            for strategy in EXPLICIT_CANDIDATES:
                try:
                    seconds, result = time_call(
                        lambda: engine.evaluate(
                            query, database, strategy=strategy, use_cache=False
                        ),
                        repeat=1,
                    )
                except (StrategyNotApplicableError, ValueError):
                    # Not applicable, or (exact-certain on the full-size
                    # config) refusing the valuation blow-up outright —
                    # exactly the guess the planner saves callers from.
                    continue
                explicit[strategy] = seconds
                if strategy == plan["strategy"]:
                    assert result.relation.rows_bag() == auto_result.relation.rows_bag(), (
                        f"{name}: auto differs from its reported choice {strategy}"
                    )
            worst = max(explicit.values())
            best = min(explicit.values())
            table.add_row(
                name,
                plan["strategy"],
                auto_seconds * 1e3,
                worst * 1e3,
                best * 1e3,
            )
            # Acceptance: auto never slower than the worst explicit
            # choice (with slack for timer noise on the tiny smoke
            # config, where every evaluation is sub-millisecond).
            slack = 2.0 if smoke else 1.2
            assert auto_seconds <= worst * slack + 1e-3, (
                f"{name}: auto ({auto_seconds * 1e3:.2f} ms, chose "
                f"{plan['strategy']}) slower than the worst explicit "
                f"choice ({worst * 1e3:.2f} ms)"
            )
    table.print()


_SUBPROCESS_SCRIPT = textwrap.dedent(
    """
    import pathlib, sys
    sys.path.insert(0, sys.argv[2])
    from bench_auto import _database, _queries
    from repro.engine import Engine

    database = _database(int(sys.argv[3]))
    hits = 0
    with Engine(cache="disk:" + sys.argv[1]) as engine:
        for query in _queries().values():
            result = engine.evaluate(query, database, strategy="auto")
            hits += result.from_cache
    print("hits=" + str(hits))
    """
)


def run_cross_session_cache(rows: int, *, smoke: bool) -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-e16-cache-")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    here = str(pathlib.Path(__file__).resolve().parent)

    def spawn() -> tuple[float, int]:
        def call() -> int:
            proc = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_SCRIPT, cache_dir, here, str(rows)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            return int(proc.stdout.strip().split("=", 1)[1])

        return time_call(call, repeat=1)

    cold_seconds, cold_hits = spawn()
    warm_seconds, warm_hits = spawn()
    table = ResultTable(
        "E16: cross-process disk-cache hits (fresh interpreter each run)",
        ["run", "wall (s)", "cache hits"],
    )
    table.add_row("first process (cold)", cold_seconds, cold_hits)
    table.add_row("second process (warm)", warm_seconds, warm_hits)
    table.print()
    query_count = len(_queries())
    assert cold_hits == 0, f"cold process unexpectedly hit: {cold_hits}"
    assert warm_hits == query_count, (
        f"expected {query_count} cross-process hits, got {warm_hits}"
    )
    if not smoke:
        assert warm_seconds < cold_seconds, (
            "warm process (all cache hits) not faster than cold "
            f"({warm_seconds:.2f}s vs {cold_seconds:.2f}s)"
        )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_auto_never_slower_than_worst_explicit():
    run_planner_quality(40, smoke=False)


def test_cross_process_cache_hits():
    run_cross_session_cache(12, smoke=True)  # subprocess spawn dominates


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="E16 auto-planner benchmark")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, correctness checks only (CI wiring)",
    )
    args = parser.parse_args()
    rows = 12 if args.smoke else 40
    run_planner_quality(rows, smoke=args.smoke)
    run_cross_session_cache(rows, smoke=args.smoke)
    print("\nE16 ok" + (" (smoke)" if args.smoke else ""))
