"""Benchmark suite configuration: make ``src/`` importable without installation."""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
