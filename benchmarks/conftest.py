"""Benchmark suite configuration.

Two jobs: make ``src/`` importable without installation, and provide
the shared ``bench_report`` fixture through which pytest-run benchmarks
emit their ``BENCH_<name>.json`` artifact (script-mode entry points
build :class:`repro.bench.BenchReport` directly — see
:mod:`repro.bench.results` for the schema).
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest

from repro.bench import BenchReport


@pytest.fixture
def bench_report(request):
    """A :class:`BenchReport` named after the test, written at teardown.

    ``test_facade_dispatch_overhead`` emits
    ``BENCH_facade_dispatch_overhead.json``; the file is only written
    when the test recorded at least one row, so a test that fails
    before measuring leaves no half-truthful artifact behind.
    """
    name = request.node.name
    if name.startswith("test_"):
        name = name[len("test_"):]
    report = BenchReport(name)
    yield report
    if report.rows or report.summary:
        path = report.write()
        print(f"\nwrote {path}")
