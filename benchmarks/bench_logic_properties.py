"""E2 — Figure 3 and Theorem 5.3: Kleene's logic from the six-valued logic.

Regenerates the Kleene truth tables (Figure 3) from the semantically
derived six-valued logic L6v, and verifies exhaustively that {t, f, u}
is the unique maximal sublogic of L6v that is both idempotent and
distributive (Theorem 5.3), and that the assertion operator breaks
knowledge-order monotonicity (the diagnosis of SQL's behaviour).
"""

from __future__ import annotations

from repro.bench import ResultTable
from repro.mvl import (
    FALSE,
    L3V,
    L3V_ASSERT,
    L6V,
    TRUE,
    UNKNOWN,
    is_distributive,
    is_idempotent,
    maximal_idempotent_distributive_sublogics,
    respects_knowledge_order,
)


def test_theorem_5_3_maximal_sublogic(benchmark):
    def analyse():
        return {
            "l6v_idempotent": is_idempotent(L6V),
            "l6v_distributive": is_distributive(L6V),
            "l3v_idempotent": is_idempotent(L3V),
            "l3v_distributive": is_distributive(L3V),
            "maximal": maximal_idempotent_distributive_sublogics(L6V),
            "l3v_monotone": respects_knowledge_order(L3V),
            "assert_monotone": respects_knowledge_order(L3V_ASSERT),
        }

    results = benchmark(analyse)

    table = ResultTable(
        "E2: propositional logics of incompleteness (Theorem 5.3)",
        ["logic", "idempotent", "distributive", "knowledge-monotone"],
    )
    table.add_row("L6v (epistemic)", results["l6v_idempotent"], results["l6v_distributive"], respects_knowledge_order(L6V))
    table.add_row("L3v (Kleene)", results["l3v_idempotent"], results["l3v_distributive"], results["l3v_monotone"])
    table.add_row("L3v + assertion ↑", is_idempotent(L3V_ASSERT), is_distributive(L3V_ASSERT), results["assert_monotone"])
    table.print()
    print("\nKleene truth tables regenerated from L6v (Figure 3):")
    print(L6V.restrict((TRUE, FALSE, UNKNOWN)).truth_table_text())

    assert not results["l6v_idempotent"] and not results["l6v_distributive"]
    assert results["l3v_idempotent"] and results["l3v_distributive"]
    assert [set(s) for s in results["maximal"]] == [{TRUE, FALSE, UNKNOWN}]
    assert results["l3v_monotone"] and not results["assert_monotone"]
