"""E6 — Precision/recall of approximations as incompleteness grows.

Mirrors the SIGMOD'19 study [27]: against ground-truth certain answers,
the Q+ rewriting has perfect precision (it is sound by construction)
while its recall degrades as the null rate grows; plain naïve/SQL-style
evaluation keeps high recall but loses precision.  The benchmark also
ablates the θ* condition guards — dropping them (i.e. evaluating the
original condition) is exactly what loses soundness.
"""

from __future__ import annotations

from repro.algebra import builder as rb, evaluate
from repro.approx import compare_answers, translate_guagliardo16
from repro.bench import ResultTable
from repro.incomplete import certain_answers_with_nulls, naive_evaluate_direct
from repro.workloads import figure1_database, inject_nulls

NULL_RATES = (0.0, 0.2, 0.4, 0.6)

QUERY = rb.difference(
    rb.project(rb.relation("Payments"), ["cid"]),
    rb.rename(
        rb.project(rb.select(rb.relation("Orders"), rb.neq("price", 35)), ["oid"]),
        {"oid": "cid"},
    ),
)
SELECT_QUERY = rb.project(rb.select(rb.relation("Orders"), rb.neq("price", 35)), ["oid"])


def test_precision_recall_vs_null_rate(benchmark):
    base = figure1_database()

    def run():
        rows = []
        for rate in NULL_RATES:
            # Average over a few seeds to smooth the tiny database.  Nulls are
            # injected into Payments only, so the exact ground truth stays
            # computable (the enumeration is exponential in the null count).
            for seed in (1, 2, 3):
                db = inject_nulls(
                    base,
                    null_rate=rate,
                    seed=seed,
                    protected_relations=("Orders", "Customers"),
                )
                schema = db.schema()
                for name, query in (("difference", QUERY), ("selection≠", SELECT_QUERY)):
                    truth = certain_answers_with_nulls(query, db)
                    plus = evaluate(translate_guagliardo16(query, schema).certain, db)
                    naive = naive_evaluate_direct(query, db)
                    rows.append(
                        (
                            rate,
                            seed,
                            name,
                            compare_answers(plus, truth),
                            compare_answers(naive, truth),
                        )
                    )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = ResultTable(
        "E6: precision / recall against exact certain answers (paper: Q+ precision 100%, recall drops)",
        ["null rate", "query", "Q+ precision", "Q+ recall", "naive precision", "naive recall"],
    )
    aggregated: dict = {}
    for rate, _seed, name, plus_quality, naive_quality in rows:
        bucket = aggregated.setdefault((rate, name), [])
        bucket.append((plus_quality, naive_quality))
    for (rate, name), bucket in sorted(aggregated.items()):
        plus_precision = sum(q[0].precision for q in bucket) / len(bucket)
        plus_recall = sum(q[0].recall for q in bucket) / len(bucket)
        naive_precision = sum(q[1].precision for q in bucket) / len(bucket)
        naive_recall = sum(q[1].recall for q in bucket) / len(bucket)
        table.add_row(rate, name, plus_precision, plus_recall, naive_precision, naive_recall)
    table.print()

    # Shape assertions: Q+ is always sound; naive evaluation is not always sound
    # once nulls appear; Q+ recall is perfect on complete data.
    assert all(plus.is_sound() for _, _, _, plus, _ in rows)
    assert all(plus.recall == 1.0 for rate, _, _, plus, _ in rows if rate == 0.0)
    assert any(not naive.is_sound() for rate, _, _, _, naive in rows if rate > 0.0)
