"""E10 — Many-valued evaluation: correctness guarantees and SQL's culprit.

Two parts, following Section 5:

* the unification semantics FO(L3v, unif) has correctness guarantees —
  every tuple it reports true is a certain answer (Corollary 5.2), while
  the SQL semantics (FOSQL) does not overshoot certainty either on these
  queries but the *assertion-extended* FO↑SQL does;
* the R − (S − T) example: real SQL (FO↑SQL and the SQL engine alike)
  returns the almost-certainly-false answer 1.
"""

from __future__ import annotations

from repro.algebra import builder as rb
from repro.bench import ResultTable
from repro.calculus import ast as fo
from repro.datamodel import Database, Null, Relation
from repro.incomplete import certain_answers_with_nulls
from repro.mvl import Assertion, fo_sql, fo_sql_assert, fo_unif
from repro.probabilistic import mu_limit
from repro.sql import run_sql

NULL = Null("e10")
DB = Database(
    {
        "R": Relation(("A",), [(1,)]),
        "S": Relation(("A",), [(1,)]),
        "T": Relation(("A",), [(NULL,)]),
    }
)

R_MINUS_S_MINUS_T_SQL = (
    "SELECT R.A FROM R WHERE R.A NOT IN "
    "( SELECT S.A FROM S WHERE S.A NOT IN ( SELECT T.A FROM T ) )"
)


def _formulas():
    x = fo.Var("x")
    in_t = fo.Exists(["y"], fo.And(fo.RelAtom("T", ["y"]), fo.EqAtom(x, "y")))
    plain = fo.And(fo.RelAtom("R", [x]), fo.Not(fo.And(fo.RelAtom("S", [x]), fo.Not(in_t))))
    asserted = fo.And(
        fo.RelAtom("R", [x]),
        Assertion(fo.Not(fo.And(fo.RelAtom("S", [x]), Assertion(fo.Not(in_t))))),
    )
    return x, plain, asserted


def test_many_valued_semantics_comparison(benchmark):
    x, plain, asserted = _formulas()
    algebra_query = rb.difference(
        rb.relation("R"), rb.difference(rb.relation("S"), rb.relation("T"))
    )

    def run():
        return {
            "unif": fo_unif().answers(plain, DB, [x]).rows_set(),
            "fosql": fo_sql().answers(plain, DB, [x]).rows_set(),
            "fosql_assert": fo_sql_assert().answers(asserted, DB, [x]).rows_set(),
            "sql_engine": run_sql(DB, R_MINUS_S_MINUS_T_SQL).rows_set(),
            "certain": certain_answers_with_nulls(algebra_query, DB).rows_set(),
            "mu_of_1": mu_limit(algebra_query, DB, (1,)),
        }

    results = benchmark(run)

    table = ResultTable(
        "E10: R − (S − T) with R=S={1}, T={⊥} — who returns the almost-certainly-false 1?",
        ["procedure", "answers", "sound wrt cert⊥"],
    )
    for name in ("unif", "fosql", "fosql_assert", "sql_engine"):
        answers = results[name]
        table.add_row(name, sorted(answers), answers <= results["certain"])
    table.add_row("exact cert⊥", sorted(results["certain"]), True)
    table.print()
    print(f"\nµ(Q, D, (1,)) = {results['mu_of_1']} — 1 is almost certainly NOT an answer.")

    assert results["certain"] == set()
    assert results["unif"] == set()
    assert results["fosql"] == set()
    assert results["fosql_assert"] == {(1,)}
    assert results["sql_engine"] == {(1,)}
    assert results["mu_of_1"] == 0
