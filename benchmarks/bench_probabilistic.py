"""E8 — Probabilistic certainty: µ_k convergence, the 0–1 law, conditioning.

Reproduces the Section 4.3 story: µ_k of a naïve answer converges to 1
(and of a non-naïve answer to 0) as the constant pool grows; under the
inclusion constraint S ⊆ T the probability of the answer {1} to T − S
is exactly 1/2; with functional dependencies the limit collapses to 0/1
via the chase.
"""

from __future__ import annotations

from fractions import Fraction

from repro.algebra import builder as rb
from repro.bench import ResultTable
from repro.constraints import FunctionalDependency, InclusionDependency
from repro.datamodel import Database, Null, Relation
from repro.probabilistic import (
    conditional_mu,
    mu_k_profile,
    mu_limit,
)

NULL = Null("e8")
DB = Database.from_dict({"T": (("A",), [(1,), (2,)]), "S": (("A",), [(NULL,)])})
QUERY = rb.difference(rb.relation("T"), rb.relation("S"))


def test_mu_k_convergence_and_conditioning(benchmark):
    def run():
        profile = mu_k_profile(QUERY, DB, (1,), [3, 4, 6, 10])
        limit = mu_limit(QUERY, DB, (1,))
        conditional = conditional_mu(
            QUERY, [InclusionDependency("S", ["A"], "T", ["A"])], DB, (1,)
        )
        fd_db = Database({"R": Relation(("A", "B"), [(1, NULL), (1, 5)])})
        fd_limit = conditional_mu(
            rb.project(rb.relation("R"), ["B"]),
            [FunctionalDependency("R", ["A"], ["B"])],
            fd_db,
            (5,),
        )
        return profile, limit, conditional, fd_limit

    profile, limit, conditional, fd_limit = benchmark(run)

    table = ResultTable(
        "E8: µ_k(T − S, D, (1,)) as the constant pool grows (limit = 1 by the 0–1 law)",
        ["k", "µ_k", "as float"],
    )
    for k, value in profile:
        table.add_row(k, str(value), float(value))
    table.print()

    table2 = ResultTable(
        "E8: limits and conditional probabilities (Theorems 4.10 / 4.11)",
        ["quantity", "value"],
    )
    table2.add_row("µ(T−S, D, (1,))  [0–1 law]", str(limit))
    table2.add_row("µ(T−S | S ⊆ T, D, (1,))", str(conditional))
    table2.add_row("µ(π_B R | A→B, D, (5,))  [chase]", str(fd_limit))
    table2.print()

    values = [value for _, value in profile]
    assert values == sorted(values) and values[-1] >= Fraction(9, 10)
    assert limit == 1
    assert conditional == Fraction(1, 2)
    assert fd_limit == 1
