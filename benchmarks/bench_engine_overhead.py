"""E12 — Overhead of the engine façade vs calling the pipelines directly.

The `repro.engine` façade adds query normalization, registry dispatch,
result annotation and (optionally) cache-key hashing on top of each
evaluation pipeline.  This experiment measures that overhead for the
naïve strategy against `incomplete.naive.naive_evaluate_direct` on the
TPC-H-lite workload — the target is a few percent on non-trivial
queries — and reports the speedup the per-session result cache buys on
repeated evaluation.
"""

from __future__ import annotations

import os

from repro.bench import ResultTable, relative_overhead, time_call
from repro.engine import Session
from repro.incomplete import naive_evaluate_direct
from repro.workloads import TpchLiteConfig, generate_tpch_lite, tpch_lite_queries

CONFIG = TpchLiteConfig(
    customers=20, orders=40, lineitems=60, suppliers=8, parts=16, null_rate=0.05
)


def test_facade_dispatch_overhead(benchmark, bench_report):
    db = generate_tpch_lite(CONFIG)
    # The baseline is a direct interpreter call, so the façade side must
    # run the interpreter too: under backend="auto" these small queries
    # push into SQLite and the encode/decode cost would masquerade as
    # dispatch overhead.  E19 (bench_backend.py) measures the backends.
    session = Session(db, backend="interpreter")
    queries = sorted(tpch_lite_queries().items())

    def run_through_engine():
        return [
            session.evaluate(query, strategy="naive", use_cache=False)
            for _name, query in queries
        ]

    results = benchmark(run_through_engine)

    table = ResultTable(
        "E12: engine façade overhead on TPC-H-lite (naïve strategy)",
        ["query", "direct (ms)", "engine (ms)", "overhead (%)"],
    )
    overheads = []
    for name, query in queries:
        # Warm both paths before timing: the first direct call pays
        # one-off costs (row-iterator setup, allocator growth) that the
        # engine path already paid during the `benchmark` run above —
        # timing a cold baseline against a warm façade inflates the
        # "overhead" with noise and made this assertion flaky.
        naive_evaluate_direct(query, db)
        session.evaluate(query, strategy="naive", use_cache=False)
        direct_seconds, direct_answer = time_call(
            lambda q=query: naive_evaluate_direct(q, db), repeat=7
        )
        engine_seconds, engine_result = time_call(
            lambda q=query: session.evaluate(q, strategy="naive", use_cache=False),
            repeat=7,
        )
        overhead = relative_overhead(direct_seconds, engine_seconds)
        overheads.append(overhead)
        table.add_row(
            name, direct_seconds * 1e3, engine_seconds * 1e3, f"{overhead:+.1f}"
        )
        bench_report.record(
            name,
            direct_ms=direct_seconds * 1e3,
            engine_ms=engine_seconds * 1e3,
            overhead_pct=overhead,
        )
        assert engine_result.relation.same_rows_as(direct_answer)
    table.add_row("median", "", "", f"{sorted(overheads)[len(overheads) // 2]:+.1f}")
    table.print()
    bench_report.summarize(
        median_overhead_pct=sorted(overheads)[len(overheads) // 2]
    )

    # The façade must stay cheap relative to evaluation.  The target is
    # < 5% on non-trivial queries; the assertion bounds the *median*
    # (one noisy sub-millisecond query cannot fail the suite) against a
    # deliberately loose ceiling — this guards against a regression that
    # makes dispatch cost comparable to evaluation, not against jitter
    # on a busy CI runner.  Tighten locally via REPRO_E12_MAX_OVERHEAD.
    max_overhead = float(os.environ.get("REPRO_E12_MAX_OVERHEAD", "100.0"))
    median_overhead = sorted(overheads)[len(overheads) // 2]
    assert median_overhead < max_overhead, (
        f"median façade overhead {median_overhead:+.1f}% exceeds "
        f"{max_overhead:.0f}% (REPRO_E12_MAX_OVERHEAD)"
    )
    assert all(r.strategy == "naive" for r in results)


def test_cache_speedup(benchmark, bench_report):
    db = generate_tpch_lite(CONFIG)
    session = Session(db)
    queries = sorted(tpch_lite_queries().items())

    # Warm the cache once, then measure fully cached evaluation.
    for _name, query in queries:
        session.evaluate(query, strategy="naive")

    def run_cached():
        return [session.evaluate(query, strategy="naive") for _name, query in queries]

    results = benchmark(run_cached)
    assert all(result.from_cache for result in results)

    table = ResultTable(
        "E12: result-cache speedup (naïve strategy, repeated queries)",
        ["query", "cold (ms)", "cached (ms)", "speedup (x)"],
    )
    for name, query in queries:
        cold_seconds, _ = time_call(
            lambda q=query: session.evaluate(q, strategy="naive", use_cache=False),
            repeat=3,
        )
        cached_seconds, cached_result = time_call(
            lambda q=query: session.evaluate(q, strategy="naive"), repeat=3
        )
        assert cached_result.from_cache
        speedup = cold_seconds / cached_seconds if cached_seconds > 0 else float("inf")
        table.add_row(name, cold_seconds * 1e3, cached_seconds * 1e3, f"{speedup:.1f}")
        bench_report.record(
            name,
            cold_ms=cold_seconds * 1e3,
            cached_ms=cached_seconds * 1e3,
            speedup=speedup,
        )
    table.print()

    stats = session.cache_stats
    print(f"\ncache stats: {stats} (hit rate {stats.hit_rate:.0%})")
    bench_report.summarize(cache_hit_rate=stats.hit_rate)
    assert stats.hits > stats.misses
