"""E3 — Theorem 4.4: query classes where naïve evaluation is exact.

For UCQs (under OWA) and Pos∀G queries (under CWA) naïve evaluation
computes certain answers with nulls; for full FO it can both overshoot
and undershoot.  The benchmark measures a correctness-rate table by
query class over a family of small random databases.
"""

from __future__ import annotations

from repro.algebra import builder as rb
from repro.bench import ResultTable
from repro.calculus import Atom, ConjunctiveQuery
from repro.incomplete import certain_answers_with_nulls, naive_evaluate_direct
from repro.workloads import GeneratorConfig, RelationSpec, generate_database


def _databases(count: int = 4):
    for seed in range(count):
        config = GeneratorConfig(
            relations=[RelationSpec("R", ["a", "b"], 4), RelationSpec("S", ["a", "b"], 3)],
            domain_size=4,
            null_rate=0.15,
            seed=seed,
        )
        yield generate_database(config)


def _queries():
    cq = ConjunctiveQuery(["x"], [Atom("R", ["x", "y"]), Atom("S", ["y", "z"])])
    return {
        "CQ (join)": cq.to_formula(),
        "UCQ (union)": rb.union(rb.project(rb.relation("R"), ["a"]), rb.project(rb.relation("S"), ["a"])),
        "FO (difference)": rb.difference(
            rb.project(rb.relation("R"), ["a"]), rb.project(rb.relation("S"), ["a"])
        ),
    }


def test_naive_evaluation_by_query_class(benchmark):
    databases = list(_databases())
    queries = _queries()

    def run():  # noqa: D401 - small closure measured once (exact cert is exponential)
        outcome = {}
        for name, query in queries.items():
            exact = 0
            sound = 0
            for db in databases:
                naive = naive_evaluate_direct(query, db).rows_set()
                certain = certain_answers_with_nulls(query, db).rows_set()
                exact += naive == certain
                sound += naive >= certain
            outcome[name] = (exact, sound, len(databases))
        return outcome

    # One measured round: the closure computes exact certain answers, which
    # are exponential in the number of nulls by design.
    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    table = ResultTable(
        "E3: naïve evaluation vs certain answers by query class (Theorem 4.4)",
        ["query class", "exact (naive == cert)", "never misses (cert ⊆ naive)", "databases"],
    )
    for name, (exact, sound, total) in outcome.items():
        table.add_row(name, f"{exact}/{total}", f"{sound}/{total}", total)
    table.print()

    # Shape: UCQ/CQ are always exact; full FO is not always exact.
    assert outcome["CQ (join)"][0] == outcome["CQ (join)"][2]
    assert outcome["UCQ (union)"][0] == outcome["UCQ (union)"][2]
    assert outcome["FO (difference)"][0] < outcome["FO (difference)"][2]
