"""E14 — Async fan-out: concurrent batch/compare vs serial evaluation.

The paper's workload shape — the same (query, database) pair pushed
through several evaluation regimes, and batches of queries pushed
through one regime — is embarrassingly parallel: every strategy is a
pure function of its inputs.  E14 measures what
:class:`~repro.engine.AsyncEngine` buys on that shape:

1. **Batch fan-out** — an 8-query ``evaluate_batch`` on the TPC-H-lite
   workload, serial :class:`~repro.engine.Engine` vs ``AsyncEngine``
   with a process pool.  On a multi-core runner the pool overlaps the
   product-heavy joins and must reach ≥ 2x wall-clock speedup; on a
   single core it degenerates to serial-plus-overhead (the assertion is
   skipped, as in E13).
2. **Compare fan-out** — ``compare`` on the Figure 1 cases: all
   applicable strategies run concurrently and the result of every
   strategy must be identical to the serial engine's, tuple for tuple.

Run under pytest (``python -m pytest benchmarks/bench_async.py``) or
directly as a script::

    python benchmarks/bench_async.py            # full sweep
    python benchmarks/bench_async.py --smoke    # tiny config for CI
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import sys

# Script mode (`python benchmarks/bench_async.py --smoke`) runs without
# the conftest path hook; mirror it so `import repro` works.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import AsyncEngine, Engine, builder as rb
from repro.algebra.conditions import Eq, Attr, Literal
from repro.bench import ResultTable, time_call
from repro.workloads import (
    TpchLiteConfig,
    figure1_cases,
    figure1_database_with_null,
    generate_tpch_lite,
    tpch_lite_queries,
)

#: Full-size config (as in E13): q_localsupp is a multi-second four-way
#: join, so overlapping queries dominates process-pool overhead.
CONFIG = TpchLiteConfig(
    customers=20, orders=40, lineitems=60, suppliers=8, null_rate=0.05
)
#: Smoke config: the seed defaults (~0.2 s), for CI wiring checks.
SMOKE_CONFIG = TpchLiteConfig(null_rate=0.05)


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def batch_queries() -> list:
    """Eight distinct TPC-H-lite plans (the six named + two variants)."""
    queries = dict(tpch_lite_queries())
    orders = rb.relation("orders")
    queries["q_open"] = rb.select(orders, Eq(Attr("o_orderstatus"), Literal("O")))
    queries["q_pending"] = rb.select(orders, Eq(Attr("o_orderstatus"), Literal("P")))
    assert len(queries) == 8
    return [queries[name] for name in sorted(queries)]


def run_batch(config: TpchLiteConfig, *, smoke: bool) -> None:
    database = generate_tpch_lite(config)
    queries = batch_queries()
    cpus = _cpu_count()

    with Engine() as engine:
        serial_seconds, serial_results = time_call(
            lambda: engine.evaluate_batch(
                queries, database, strategy="naive", use_cache=False
            ),
            repeat=1,
        )

    async def run_async():
        async with AsyncEngine(
            pool="process", max_workers=min(8, cpus)
        ) as aeng:
            return await aeng.evaluate_batch(
                queries, database, strategy="naive", use_cache=False
            )

    async_seconds, async_results = time_call(
        lambda: asyncio.run(run_async()), repeat=1
    )

    for i, (want, got) in enumerate(zip(serial_results, async_results)):
        assert want.relation.rows_bag() == got.relation.rows_bag(), (
            f"query {i}: async batch result differs from serial"
        )

    speedup = serial_seconds / async_seconds
    table = ResultTable(
        "E14: 8-query evaluate_batch, serial vs async process pool (naïve)",
        ["engine", "wall (ms)", "speedup"],
    )
    table.add_row("Engine (serial)", serial_seconds * 1e3, "1.00x")
    table.add_row(
        f"AsyncEngine (process x{min(8, cpus)})", async_seconds * 1e3,
        f"{speedup:.2f}x",
    )
    table.print()
    print(f"cpus available: {cpus}")

    if smoke or cpus < 2:
        print("(speedup assertion skipped: smoke mode or single core)")
        return
    # Acceptance: concurrent fan-out beats serial; with enough cores the
    # 8-way overlap must at least halve the wall-clock.
    floor = 2.0 if cpus >= 4 else 1.1
    assert speedup >= floor, (
        f"async batch speedup {speedup:.2f}x below {floor}x on {cpus} cpus "
        f"({serial_seconds * 1e3:.0f} ms serial vs {async_seconds * 1e3:.0f} ms async)"
    )


def run_compare(*, smoke: bool) -> None:
    database = figure1_database_with_null()
    cases = figure1_cases()
    cpus = _cpu_count()
    # Smoke mode drops approx-libkin16: its Qf side materialises Dom^k
    # on the anti-join case (~15 s — the blowup E5 measures, not E14's
    # subject) and would dominate a CI wiring check.
    strategies = None
    if smoke:
        strategies = tuple(
            name for name in Engine.strategies() if name != "approx-libkin16"
        )
    table = ResultTable(
        "E14: Figure 1 compare fan-out (all applicable strategies)",
        ["case", "frontend", "strategies", "serial (ms)", "async (ms)"],
    )
    with Engine() as engine:
        # time_call is sync-only; time the awaited comparison manually.
        import time as _time

        async def main():
            async with AsyncEngine(pool="process", max_workers=min(6, cpus)) as aeng:
                for case in cases:
                    for frontend, query in (
                        ("sql", case.sql),
                        ("algebra", case.algebra),
                    ):
                        serial_seconds, expected = time_call(
                            lambda q=query: engine.compare(
                                q, database, strategies=strategies, use_cache=False
                            ),
                            repeat=1,
                        )
                        start = _time.perf_counter()
                        actual = await aeng.compare(
                            query, database, strategies=strategies, use_cache=False
                        )
                        async_seconds = _time.perf_counter() - start
                        assert set(actual) == set(expected), (
                            f"{case.name} [{frontend}]: strategy sets differ"
                        )
                        for name in expected:
                            assert expected[name].relation.rows_bag() == actual[
                                name
                            ].relation.rows_bag(), (
                                f"{case.name} [{frontend}] {name}: results differ"
                            )
                        table.add_row(
                            case.name,
                            frontend,
                            len(actual),
                            serial_seconds * 1e3,
                            async_seconds * 1e3,
                        )

        asyncio.run(main())
    table.print()


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_async_batch_speedup():
    run_batch(CONFIG, smoke=False)


def test_async_compare_fanout_matches_serial():
    run_compare(smoke=False)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="E14 async fan-out benchmark")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, correctness checks only (CI wiring)",
    )
    args = parser.parse_args()
    config = SMOKE_CONFIG if args.smoke else CONFIG
    run_batch(config, smoke=args.smoke)
    run_compare(smoke=args.smoke)
    print("\nE14 ok" + (" (smoke)" if args.smoke else ""))
