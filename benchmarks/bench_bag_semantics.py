"""E9 — Bag semantics: the multiplicity bracket of Theorem 4.8.

Verifies and times the bracket #(ā, Q+(D)) ≤ □Q(D, ā) ≤ #(ā, Q?(D)) on
a workload of queries and tuples, against the exact minimum multiplicity
computed by valuation enumeration.
"""

from __future__ import annotations

from repro.algebra import builder as rb
from repro.approx import approximate_multiplicity_bounds, exact_multiplicity_bounds
from repro.bench import ResultTable
from repro.datamodel import Database, Null, Relation

NULL_A, NULL_B = Null("e9a"), Null("e9b")
DB = Database(
    {
        "R": Relation(("A",), [(1,), (1,), (2,), (NULL_A,)]),
        "S": Relation(("A",), [(1,), (NULL_B,)]),
    }
)

CASES = [
    ("R ∪ S", rb.union(rb.relation("R"), rb.relation("S")), (1,)),
    ("R − S", rb.difference(rb.relation("R"), rb.relation("S")), (1,)),
    ("R ∩ S", rb.intersection(rb.relation("R"), rb.relation("S")), (1,)),
    ("σ_{A≠2}(R)", rb.select(rb.relation("R"), rb.neq("A", 2)), (1,)),
]


def test_bag_multiplicity_bounds(benchmark):
    def run():
        rows = []
        for name, query, tuple_ in CASES:
            exact = exact_multiplicity_bounds(query, DB, tuple_)
            approx = approximate_multiplicity_bounds(query, DB, tuple_)
            rows.append((name, tuple_, approx.lower, exact.lower, exact.upper, approx.upper))
        return rows

    rows = benchmark(run)

    table = ResultTable(
        "E9: bag-semantics certainty bounds (Theorem 4.8): #Q+ ≤ □Q ≤ #Q?",
        ["query", "tuple", "#Q+(D)", "□Q (exact)", "◇Q (exact)", "#Q?(D)"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()

    for _name, _tuple, lower, exact_min, exact_max, upper in rows:
        assert lower <= exact_min <= upper
        assert exact_min <= exact_max
