"""E18 — Statistics-driven planning: plan by estimate, not by accident.

Three questions about the cost model (`repro.algebra.stats`, this PR):

1. **Join reordering** — ``q_3way`` below joins orders, supplier and
   lineitem but is *written* with the two disconnected relations
   adjacent, so the stats-free physical pass (which only converts the
   σ-stack over the ×-tower in written order) materialises the
   ``orders × supplier`` Cartesian product.  With statistics the
   reorder-joins rule picks the join tree by estimated output
   cardinality and never builds it.  Acceptance: **≥ 2x** wall-clock
   for naïve evaluation at the full workload size (the Figure 2b pair
   is dominated by unification-condition checks, so it only asserts
   no-regression); the smoke run asserts the stats-driven plan is no
   slower than the stats-free one.
2. **Build-side flips with cardinality skew** — the same join query
   planned against two databases with opposite customer/order skew pins
   opposite hash-join build sides, with the estimated per-side
   cardinalities printed.  No cache clearing between the two plans: the
   statistics fingerprint in the optimizer memo key is what replans.
3. **Strategy flips with injected nulls** — ``strategy="auto"`` on a
   division query (outside the Figure 2 fragments) picks
   ``exact-certain`` while the valuation-space estimate
   ``(|adom| + 1)^|nulls|`` fits the budget and falls back to naïve
   evaluation once injected nulls blow past it.  The numeric estimates
   behind both decisions are visible in ``result.metadata["plan"]``.

Every stats-driven result is compared tuple-for-tuple against its
stats-free twin (the randomized harness in
``tests/test_stats_equivalence.py`` does this exhaustively; the
benchmark re-checks at benchmark scale).

Run under pytest (``python -m pytest benchmarks/bench_stats.py``) or
directly as a script::

    python benchmarks/bench_stats.py            # full sweep (asserts ≥2x)
    python benchmarks/bench_stats.py --smoke    # tiny config for CI
                                                # (asserts stats ≤ stats-free)
"""

from __future__ import annotations

import pathlib
import random
import sys

# Script mode (`python benchmarks/bench_stats.py --smoke`) runs without
# the conftest path hook; mirror it so `import repro` works.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import Database, Engine, Null, Relation
from repro.algebra import ast as ra
from repro.algebra import builder as rb, walk
from repro.algebra.conditions import Attr, Eq
from repro.algebra.optimize import optimize_plan
from repro.algebra.stats import Stats, estimate_cost
from repro.bench import ResultTable, time_call
from repro.workloads.tpch_lite import TpchLiteConfig, generate_tpch_lite

#: Full-size config: the mis-written tower's orders × supplier product
#: is 200·80 = 16k rows wide enough that reordering dominates overhead.
FULL = TpchLiteConfig(
    customers=60, orders=200, lineitems=300, suppliers=80, null_rate=0.02
)
#: Smoke config: CI wiring check only.
SMOKE = TpchLiteConfig(
    customers=20, orders=60, lineitems=80, suppliers=25, null_rate=0.02
)

SPEEDUP_FLOOR = 2.0


def _three_way_tower() -> ra.Query:
    """orders ⋈ lineitem ⋈ supplier, written with the two *disconnected*
    relations adjacent — the shape only join reordering can rescue."""
    tower = rb.product(
        rb.product(rb.relation("orders"), rb.relation("supplier")),
        rb.relation("lineitem"),
    )
    tower = rb.select(tower, Eq(Attr("o_orderkey"), Attr("l_orderkey")))
    tower = rb.select(tower, Eq(Attr("s_suppkey"), Attr("l_suppkey")))
    return rb.project(tower, ["o_orderkey", "l_linekey", "s_name"])


def _with_k_nulls(db: Database, k: int, seed: int = 5) -> Database:
    """Replace ``k`` cells of ``db`` with fresh marked nulls."""
    rng = random.Random(seed)
    rows = {name: list(rel.iter_rows_bag()) for name, rel in db.relations()}
    positions = [
        (name, i, j)
        for name, rels in rows.items()
        for i, row in enumerate(rels)
        for j in range(len(row))
    ]
    for index, (name, i, j) in enumerate(rng.sample(positions, k)):
        row = list(rows[name][i])
        row[j] = Null(f"b{index}")
        rows[name][i] = tuple(row)
    return Database(
        {name: Relation(db[name].attributes, rels) for name, rels in rows.items()}
    )


def _assert_identical(plain, fast, label: str) -> None:
    assert plain.relation.rows_bag() == fast.relation.rows_bag(), (
        f"{label}: stats-driven result differs from stats-free"
    )
    for side in ("certain", "possible", "certainly_false"):
        a, b = getattr(plain, side), getattr(fast, side)
        assert (a is None) == (b is None), f"{label}: {side} presence differs"
        if a is not None:
            assert a.rows_set() == b.rows_set(), f"{label}: {side} differs"


# ----------------------------------------------------------------------
# 1. Join reordering: wall clock + estimated C_out, stats off vs on
# ----------------------------------------------------------------------
def run_join_reordering(config: TpchLiteConfig, *, smoke: bool) -> None:
    database = generate_tpch_lite(config)
    query = _three_way_tower()
    schema = database.schema()
    stats = Stats(database)
    blind_cost = estimate_cost(optimize_plan(query, schema), schema, stats)
    informed_cost = estimate_cost(
        optimize_plan(query, schema, stats=stats), schema, stats
    )
    table = ResultTable(
        f"E18: 3-way tower, |orders|={config.orders} |supplier|="
        f"{config.suppliers} |lineitem|={config.lineitems} "
        f"(estimated C_out {blind_cost:.0f} -> {informed_cost:.0f})",
        ["strategy", "stats off (ms)", "stats on (ms)", "speedup"],
    )
    speedups: dict[str, float] = {}
    # Stats steer the *interpreter's* join order; SQLite reorders joins
    # with its own planner, so under backend="auto" both sides would run
    # the same physical join and the measured difference would vanish.
    # E19 (bench_backend.py) owns the backend comparison.
    with Engine(backend="interpreter") as engine:
        for strategy in ("naive", "approx-guagliardo16"):
            plain_seconds, plain = time_call(
                lambda s=strategy: engine.evaluate(
                    query, database, strategy=s, optimize=True, stats=False,
                    use_cache=False,
                ),
                repeat=1,
            )
            fast_seconds, fast = time_call(
                lambda s=strategy: engine.evaluate(
                    query, database, strategy=s, optimize=True, stats=True,
                    use_cache=False,
                ),
                repeat=1,
            )
            _assert_identical(plain, fast, strategy)
            speedups[strategy] = plain_seconds / fast_seconds
            table.add_row(
                strategy,
                plain_seconds * 1e3,
                fast_seconds * 1e3,
                f"{speedups[strategy]:.1f}x",
            )
    table.print()
    assert informed_cost < blind_cost, (
        f"statistics did not lower the estimated cost "
        f"({blind_cost:.0f} -> {informed_cost:.0f})"
    )
    if smoke:
        # CI wiring check: the cost model must never lose on its home turf.
        assert speedups["naive"] >= 1.0, (
            f"stats-driven naive evaluation slower than stats-free "
            f"({speedups['naive']:.2f}x) on the E18 selective-join workload"
        )
        return
    assert speedups["naive"] >= SPEEDUP_FLOOR, (
        f"naive 3-way tower speedup {speedups['naive']:.1f}x below the "
        f"{SPEEDUP_FLOOR}x acceptance floor"
    )
    # The translated pair spends most of its time in per-tuple
    # unification-condition checks rather than in the join itself, so
    # only no-regression is asserted there.
    assert speedups["approx-guagliardo16"] >= 1.0, (
        f"(Q+, Q?) 3-way tower slowed down under statistics "
        f"({speedups['approx-guagliardo16']:.1f}x)"
    )


# ----------------------------------------------------------------------
# 2. Cardinality skew flips the hash-join build side (no cache clears)
# ----------------------------------------------------------------------
def run_build_side_flip() -> None:
    query = rb.select(
        rb.product(rb.relation("customer"), rb.relation("orders")),
        Eq(Attr("c_custkey"), Attr("o_custkey")),
    )
    table = ResultTable(
        "E18: build side under opposite customer/order skew",
        ["|customer|", "|orders|", "build side", "est. left", "est. right"],
    )
    builds = []
    for customers, orders in ((60, 12), (12, 60)):
        database = generate_tpch_lite(
            TpchLiteConfig(customers=customers, orders=orders)
        )
        stats = Stats(database)
        plan = optimize_plan(query, database.schema(), stats=stats)
        join = next(n for n in walk(plan) if isinstance(n, ra.EquiJoin))
        from repro.algebra.stats import PlanEstimator

        estimator = PlanEstimator(database.schema(), stats)
        builds.append(join.build)
        table.add_row(
            customers,
            orders,
            join.build,
            f"{estimator.estimate(join.left).rows:.0f}",
            f"{estimator.estimate(join.right).rows:.0f}",
        )
    table.print()
    assert builds == ["right", "left"], (
        f"expected opposite skew to pin opposite build sides, got {builds} "
        "(is the statistics fingerprint missing from the optimizer memo key?)"
    )


# ----------------------------------------------------------------------
# 3. Injected nulls flip the auto-planner's strategy choice
# ----------------------------------------------------------------------
def run_planner_flip() -> None:
    base = generate_tpch_lite(TpchLiteConfig())
    orders = rb.relation("orders")
    # Division is outside the Figure 2 fragments, so the auto planner
    # weighs exact-certain's valuation-space estimate against its budget.
    query = rb.division(
        rb.project(orders, ["o_custkey", "o_orderstatus"]),
        rb.project(orders, ["o_orderstatus"]),
    )
    table = ResultTable(
        "E18: auto strategy vs injected nulls (budget 10^4 valuations)",
        ["nulls", "chosen strategy", "guarantee", "estimated valuations"],
    )
    chosen = []
    with Engine() as engine:
        for nulls in (1, 6):
            database = _with_k_nulls(base, nulls)
            result = engine.evaluate(
                query, database, strategy="auto", use_cache=False
            )
            plan = result.metadata["plan"]
            estimate = plan["estimates"]["exact-certain-valuations"]
            chosen.append(plan["strategy"])
            table.add_row(nulls, plan["strategy"], plan["guarantee"], f"{estimate:.0f}")
    table.print()
    assert chosen == ["exact-certain", "naive"], (
        f"expected the null injection to flip exact-certain -> naive, got {chosen}"
    )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_join_reordering_speedup():
    run_join_reordering(FULL, smoke=False)


def test_build_side_flip():
    run_build_side_flip()


def test_planner_flip_on_injected_nulls():
    run_planner_flip()


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="E18 statistics benchmark")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, correctness + no-regression checks only (CI wiring)",
    )
    args = parser.parse_args()
    run_join_reordering(SMOKE if args.smoke else FULL, smoke=args.smoke)
    run_build_side_flip()
    run_planner_flip()
    print("\nE18 ok" + (" (smoke)" if args.smoke else ""))
