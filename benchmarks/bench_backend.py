"""E19 — SQLite pushdown backend vs the tuple-at-a-time interpreter.

E15 measured the plan optimizer; both of its contestants still ran on
the Python interpreter.  This experiment holds the plan fixed (both
sides get the same optimized plan) and swaps the *executor*: the
``backend="sqlite"`` columnar backend compiles the whole plan to one
SQL statement over in-memory SQLite, while ``backend="interpreter"``
walks it tuple by tuple.  Three questions:

1. **Selective multi-way joins** — E15's workload at 10x scale, grown
   to a three-way chain ``π_a(σ_{b=c ∧ d=e}(R × S × T))`` with
   |R| = |S| = |T| = 3000 (E15 full is 300×300).  The interpreter
   streams every intermediate tuple through Python; SQLite runs the
   same hash joins in C and only ~50 distinct rows cross back over the
   decode boundary.  Acceptance: **≥ 10x** wall-clock.
2. **Translated plans** — the Figure 2b (Q+, Q?) pair pays the
   interpreter toll twice (certain and possible plans), and the
   possible-answers side grows super-linearly in Python; SQLite
   executes both statements against one encoded database.
3. **Zero result changes** — every SQLite result in the sweep is
   compared tuple-for-tuple against its interpreter twin (the
   randomized harness in ``tests/test_backend_equivalence.py`` does
   this exhaustively; the benchmark re-checks it at benchmark scale).
   Plans the compiler cannot express (here: Division) must fall back
   to the interpreter under ``backend="auto"`` and say so in
   ``result.metadata["backend"]``.

Run under pytest (``python -m pytest benchmarks/bench_backend.py``) or
directly as a script::

    python benchmarks/bench_backend.py            # full sweep (asserts ≥10x)
    python benchmarks/bench_backend.py --smoke    # tiny config for CI (asserts ≥5x)
"""

from __future__ import annotations

import pathlib
import random
import sys

# Script mode (`python benchmarks/bench_backend.py --smoke`) runs
# without the conftest path hook; mirror it so `import repro` works.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import Database, Engine, Null, Relation
from repro.algebra import builder as rb
from repro.algebra.conditions import And, Attr, Eq

from repro.bench import BenchReport, ResultTable, time_call

#: Full-size config: 10x the E15 full workload (300×300).  The two
#: hash joins stream ~400k intermediate tuples through the
#: interpreter; the SQLite side encodes 18k cells and decodes ~50
#: distinct rows, so the C-speed join dominates the comparison.
FULL_ROWS = 3_000
#: Smoke config: CI-sized, still ~36k interpreter intermediates.
SMOKE_ROWS = 600
#: The (Q+, Q?) case stays moderate: its possible-answers plan is
#: super-linear on the interpreter (~4s at 400 rows, ~53s at 800).
TRANSLATED_ROWS = 400
TRANSLATED_SMOKE_ROWS = 150

#: Full runs must clear 10x (the PR acceptance bar), smoke runs 5x —
#: generous slack under the ~10-13x (naive) and ~25-35x (translated)
#: measured on an unloaded machine.
SPEEDUP_FLOOR = 10.0
SMOKE_SPEEDUP_FLOOR = 5.0


def _chain_database(rows: int, *, null_rate: float = 0.02, seed: int = 7) -> Database:
    """Three relations joined in a chain: R(a,b) ⋈ S(c,d) ⋈ T(e,f).

    The shared domain is deliberately small (rows/30) so each join has
    ~30x fanout: intermediates dwarf both the base tables (what SQLite
    must encode) and the distinct projection (what it must decode).
    """
    rng = random.Random(seed)
    domain = [f"v{i}" for i in range(max(8, rows // 30))]

    def cell(prefix: str, i: int):
        if rng.random() < null_rate:
            return Null(f"{prefix}{i}")
        return rng.choice(domain)

    def relation(name: str, attrs: tuple[str, str]) -> Relation:
        return Relation(attrs, [(cell(name, i), cell(name + "'", i)) for i in range(rows)])

    return Database(
        {
            "R": relation("r", ("a", "b")),
            "S": relation("s", ("c", "d")),
            "T": relation("t", ("e", "f")),
        }
    )


def _chain_join_query():
    """π_a(σ_{b=c ∧ d=e}(R × S × T)): two join keys, tiny distinct output."""
    return rb.project(
        rb.select(
            rb.product(rb.product(rb.relation("R"), rb.relation("S")), rb.relation("T")),
            And(Eq(Attr("b"), Attr("c")), Eq(Attr("d"), Attr("e"))),
        ),
        ("a",),
    )


def _assert_identical(interp, sqlite, label: str) -> None:
    assert interp.relation.rows_bag() == sqlite.relation.rows_bag(), (
        f"{label}: sqlite result differs from interpreter"
    )
    for side in ("certain", "possible", "certainly_false"):
        a, b = getattr(interp, side), getattr(sqlite, side)
        assert (a is None) == (b is None), f"{label}: {side} presence differs"
        if a is not None:
            assert a.rows_set() == b.rows_set(), f"{label}: {side} differs"


def _assert_resolved(result, expected: str, label: str) -> None:
    note = result.metadata.get("backend")
    assert note is not None and note.get("resolved") == expected, (
        f"{label}: expected backend to resolve to {expected!r}, got {note!r}"
    )


def run_backend_speedup(
    rows: int,
    translated_rows: int,
    *,
    smoke: bool,
    report: BenchReport | None = None,
) -> None:
    query = _chain_join_query()
    table = ResultTable(
        f"E19: backend on π(σ(R × S × T)), |R| = |S| = |T| = {rows}",
        ["strategy", "rows", "interpreter (ms)", "sqlite (ms)", "speedup"],
    )
    speedups: dict[str, float] = {}
    cases = [("naive", rows), ("approx-guagliardo16", translated_rows)]
    with Engine() as engine:
        for strategy, case_rows in cases:
            database = _chain_database(case_rows)
            slow_seconds, slow = time_call(
                lambda s=strategy, d=database: engine.evaluate(
                    query, d, strategy=s, backend="interpreter", use_cache=False
                ),
                repeat=1,
            )
            fast_seconds, fast = time_call(
                lambda s=strategy, d=database: engine.evaluate(
                    query, d, strategy=s, backend="sqlite", use_cache=False
                ),
                repeat=1,
            )
            _assert_identical(slow, fast, strategy)
            _assert_resolved(slow, "interpreter", strategy)
            _assert_resolved(fast, "sqlite", strategy)
            speedups[strategy] = slow_seconds / fast_seconds
            if report is not None:
                report.record(
                    strategy,
                    rows=case_rows,
                    interpreter_ms=slow_seconds * 1e3,
                    sqlite_ms=fast_seconds * 1e3,
                    speedup=speedups[strategy],
                )
            table.add_row(
                strategy,
                case_rows,
                slow_seconds * 1e3,
                fast_seconds * 1e3,
                f"{speedups[strategy]:.1f}x",
            )
    table.print()
    floor = SMOKE_SPEEDUP_FLOOR if smoke else SPEEDUP_FLOOR
    if report is not None:
        report.summarize(
            speedup_floor=floor, min_speedup=min(speedups.values())
        )
    for strategy, _ in cases:
        assert speedups[strategy] >= floor, (
            f"{strategy} sqlite speedup {speedups[strategy]:.1f}x below the "
            f"{floor}x {'smoke ' if smoke else ''}floor on the E19 chain-join workload"
        )


def run_auto_fallback(*, smoke: bool) -> None:
    """Division has no SQL compilation: backend="auto" must fall back.

    The point of ``auto`` is that callers keep one spelling and the
    planner routes: compilable plans go to SQLite, the rest run on the
    interpreter with the reason recorded in ``metadata["backend"]``.
    """
    del smoke  # same tiny workload either way
    database = Database(
        {
            "R": Relation(("a", "b"), [("x", "u"), ("x", "v"), ("y", "u")]),
            "S": Relation(("b",), [("u",), ("v",)]),
        }
    )
    query = rb.division(rb.relation("R"), rb.relation("S"))
    with Engine(backend="auto") as engine:
        result = engine.evaluate(query, database, strategy="naive", use_cache=False)
    note = result.metadata["backend"]
    assert note["requested"] == "auto" and note["resolved"] == "interpreter", note
    assert "Division" in note["reason"], note
    assert result.relation.rows_set() == {("x",)}
    print(f'E19: auto fallback on ÷ -> {note["resolved"]} ({note["reason"]})')


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_backend_speedup():
    report = BenchReport("backend")
    run_backend_speedup(FULL_ROWS, TRANSLATED_ROWS, smoke=False, report=report)
    print(f"wrote {report.write()}")


def test_auto_fallback():
    run_auto_fallback(smoke=False)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="E19 execution-backend benchmark")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workload; asserts the relaxed 5x floor",
    )
    args = parser.parse_args()
    report = BenchReport("backend", smoke=args.smoke)
    if args.smoke:
        run_backend_speedup(SMOKE_ROWS, TRANSLATED_SMOKE_ROWS, smoke=True, report=report)
    else:
        run_backend_speedup(FULL_ROWS, TRANSLATED_ROWS, smoke=False, report=report)
    run_auto_fallback(smoke=args.smoke)
    print(f"\nwrote {report.write()}")
    print("E19 ok" + (" (smoke)" if args.smoke else ""))
