"""E1 — Figure 1 and the Section 1 motivating examples.

Regenerates the paper's introductory table: what SQL returns on the
complete and on the incomplete variant of the orders/payments/customers
database, against the certain answers and the sound Q+ approximation.
The paper's claims: a single NULL makes the unpaid-orders query lose o3
(false negative), makes the customers query invent c2 (false positive),
and makes the `oid='o2' OR oid<>'o2'` query miss the certain answer c2.
"""

from __future__ import annotations

from repro.algebra import evaluate
from repro.approx import translate_guagliardo16
from repro.bench import ResultTable
from repro.incomplete import certain_answers_with_nulls
from repro.sql import run_sql
from repro.workloads import (
    CUSTOMERS_WITHOUT_PAID_ORDER_SQL,
    TAUTOLOGY_SQL,
    UNPAID_ORDERS_SQL,
    customers_without_paid_order_algebra,
    figure1_database,
    figure1_database_with_null,
    tautology_algebra,
    unpaid_orders_algebra,
)

QUERIES = [
    ("unpaid orders", UNPAID_ORDERS_SQL, unpaid_orders_algebra()),
    ("customers w/o paid order", CUSTOMERS_WITHOUT_PAID_ORDER_SQL, customers_without_paid_order_algebra()),
    ("oid='o2' OR oid<>'o2'", TAUTOLOGY_SQL, tautology_algebra()),
]


def _rows(relation):
    return "{" + ", ".join(str(r[0]) for r in relation.sorted_rows()) + "}"


def test_figure1_sql_vs_certainty(benchmark):
    complete = figure1_database()
    incomplete = figure1_database_with_null()
    schema = incomplete.schema()

    def run_all():
        results = []
        for name, sql_text, algebra_query in QUERIES:
            sql_complete = run_sql(complete, sql_text)
            sql_incomplete = run_sql(incomplete, sql_text)
            certain = certain_answers_with_nulls(algebra_query, incomplete)
            plus = evaluate(translate_guagliardo16(algebra_query, schema).certain, incomplete)
            results.append((name, sql_complete, sql_incomplete, certain, plus))
        return results

    results = benchmark(run_all)

    table = ResultTable(
        "E1: Figure 1 — SQL answers vs certain answers (one NULL in Payments)",
        ["query", "SQL on complete D", "SQL with NULL", "certain answers", "Q+ (sound)"],
    )
    for name, sql_complete, sql_incomplete, certain, plus in results:
        table.add_row(name, _rows(sql_complete), _rows(sql_incomplete), _rows(certain), _rows(plus))
    table.print()

    # Paper-shape assertions: false negative, false positive, missed certain answer.
    by_name = {r[0]: r for r in results}
    assert by_name["unpaid orders"][1].rows_set() == {("o3",)}
    assert by_name["unpaid orders"][2].rows_set() == set()
    assert by_name["customers w/o paid order"][2].rows_set() == {("c2",)}
    assert by_name["customers w/o paid order"][3].rows_set() == set()
    assert by_name["oid='o2' OR oid<>'o2'"][2].rows_set() == {("c1",)}
    assert by_name["oid='o2' OR oid<>'o2'"][3].rows_set() == {("c1",), ("c2",)}
