"""E20 — Resilience under injected faults: degradation, breakers, overhead.

Three questions about the resilience layer (`repro.resilience`):

1. **Graceful degradation** — with a 10% per-shard failure rate and
   ``on_shard_error="degrade"``, what fraction of requests degrade, and
   is every degraded answer a sound subset of the fault-free certain
   answer?  Zero requests may outlive their deadline ("no hung
   requests").
2. **Circuit breaker** — with SQLite failing hard, how quickly does
   ``backend="auto"`` trip to the interpreter, and does the breaker
   recover through its half-open probe once the backend heals?
3. **Overhead** — what do an armed (never-firing) fault plan, a
   deadline, and a retry policy cost on the fault-free fast path?

Run under pytest (``python -m pytest benchmarks/bench_resilience.py``)
or directly as a script::

    python benchmarks/bench_resilience.py            # full sweep
    python benchmarks/bench_resilience.py --smoke    # tiny config for CI
"""

from __future__ import annotations

import pathlib
import sys
import time

# Script mode (`python benchmarks/bench_resilience.py --smoke`) runs
# without the conftest path hook; mirror it so `import repro` works.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import BenchReport, ResultTable, time_call
from repro.engine import Engine
from repro.resilience import (
    FaultPlan,
    FaultRule,
    RetryPolicy,
    breaker_for,
    faults_armed,
    reset_breakers,
)
from repro.sharding import ShardedDatabase
from repro.workloads import TpchLiteConfig, generate_tpch_lite, tpch_lite_queries

#: Full-size config (a few hundred ms per evaluation) and the CI smoke
#: config (seed defaults, wiring checks only).
CONFIG = TpchLiteConfig(customers=20, orders=40, lineitems=60, suppliers=8)
SMOKE_CONFIG = TpchLiteConfig()

SHARDS = 4
TIMEOUT = 30.0
SLACK = 10.0


def run_degradation(
    config: TpchLiteConfig, *, smoke: bool, report: BenchReport | None = None
) -> None:
    database = generate_tpch_lite(config)
    # q_localsupp is the only CQ in the workload — degradation is
    # capability-gated to monotone fragments, so it is the one whose
    # failed shards may be dropped.
    query = tpch_lite_queries()["q_localsupp"]
    requests = 10 if smoke else 40
    with Engine() as engine:
        sharded = ShardedDatabase.from_database(database, SHARDS)
        reference = engine.evaluate(query, sharded, strategy="naive", use_cache=False)
        plan = FaultPlan(
            [FaultRule(point="shard.task", probability=0.10, error="fatal")],
            seed=20260808,
        )
        ok = degraded = 0
        max_wall = 0.0
        with faults_armed(plan):
            for _ in range(requests):
                start = time.monotonic()
                result = engine.evaluate(
                    query,
                    sharded,
                    strategy="naive",
                    use_cache=False,
                    timeout=TIMEOUT,
                    on_shard_error="degrade",
                    retry=False,
                )
                wall = time.monotonic() - start
                max_wall = max(max_wall, wall)
                assert wall <= TIMEOUT + SLACK, f"request hung for {wall:.1f}s"
                note = result.metadata.get("degraded")
                if note is None:
                    ok += 1
                    assert (
                        result.relation.rows_bag() == reference.relation.rows_bag()
                    ), "fault-free request differs from reference"
                else:
                    degraded += 1
                    assert note["guarantee"] == "sound-subset"
                    assert result.relation.rows_set() <= reference.relation.rows_set(), (
                        "degraded answer is not a subset of the fault-free answer"
                    )
        table = ResultTable(
            "E20: graceful degradation at 10% shard failure rate "
            f"({SHARDS} shards, naïve strategy)",
            ["requests", "clean", "degraded", "hung", "max wall (ms)"],
        )
        table.add_row(requests, ok, degraded, 0, max_wall * 1e3)
        table.print()
        if report is not None:
            report.record(
                "degradation",
                requests=requests,
                clean=ok,
                degraded=degraded,
                hung=0,
                max_wall_ms=max_wall * 1e3,
            )
        assert ok + degraded == requests
        if not smoke:
            # At p=0.10 per shard task the degraded share must be visible
            # but the service must stay predominantly healthy.
            assert degraded >= 1, "fault schedule never bit"
            assert ok >= requests // 2, (ok, degraded)


def run_breaker(
    config: TpchLiteConfig, *, smoke: bool, report: BenchReport | None = None
) -> None:
    database = generate_tpch_lite(config)
    query = tpch_lite_queries()["q_select"]
    reset_breakers()
    try:
        breaker = breaker_for(
            "naive", "sqlite", failure_threshold=3, cooldown=0.2
        )
        plan = FaultPlan(
            [FaultRule(point="sqlite.run", probability=1.0, error="operational")],
            seed=1,
        )
        table = ResultTable(
            "E20: circuit breaker — SQLite outage, trip, half-open recovery",
            ["request", "backend resolved", "breaker state"],
        )
        with Engine() as engine:
            with faults_armed(plan):
                for index in range(4):
                    result = engine.evaluate(
                        query,
                        database,
                        strategy="naive",
                        backend="auto",
                        use_cache=False,
                    )
                    resolved = result.metadata["backend"]["resolved"]
                    table.add_row(f"outage #{index + 1}", resolved, breaker.state)
                    assert resolved == "interpreter"
            assert breaker.state == "open", breaker.snapshot()
            time.sleep(0.25)  # cool-down elapses; next request is the probe
            result = engine.evaluate(
                query, database, strategy="naive", backend="auto", use_cache=False
            )
            table.add_row("post-heal", result.metadata["backend"]["resolved"], breaker.state)
            table.print()
            assert result.metadata["backend"]["resolved"] == "sqlite"
            assert breaker.state == "closed", breaker.snapshot()
            assert breaker.snapshot()["trips"] >= 1
            if report is not None:
                report.record(
                    "breaker",
                    trips=breaker.snapshot()["trips"],
                    recovered=True,
                )
    finally:
        reset_breakers()


def run_overhead(
    config: TpchLiteConfig, *, smoke: bool, report: BenchReport | None = None
) -> None:
    database = generate_tpch_lite(config)
    query = tpch_lite_queries()["q_join"]
    repeat = 3 if smoke else 10
    idle_plan = FaultPlan(
        [FaultRule(point="never.fires", probability=1.0)], seed=0
    )
    with Engine() as engine:
        def baseline():
            return engine.evaluate(query, database, strategy="naive", use_cache=False)

        def with_deadline():
            return engine.evaluate(
                query, database, strategy="naive", use_cache=False, timeout=TIMEOUT
            )

        def with_retry():
            return engine.evaluate(
                query, database, strategy="naive", use_cache=False,
                retry=RetryPolicy(max_attempts=3),
            )

        base_seconds, _ = time_call(baseline, repeat=repeat)
        deadline_seconds, _ = time_call(with_deadline, repeat=repeat)
        retry_seconds, _ = time_call(with_retry, repeat=repeat)
        with faults_armed(idle_plan):
            armed_seconds, _ = time_call(baseline, repeat=repeat)

        table = ResultTable(
            "E20: fault-free fast-path overhead (naïve strategy)",
            ["configuration", "wall (ms)", "vs baseline"],
        )
        for name, seconds in (
            ("baseline", base_seconds),
            ("deadline armed", deadline_seconds),
            ("retry policy armed", retry_seconds),
            ("fault plan armed (never fires)", armed_seconds),
        ):
            table.add_row(name, seconds * 1e3, f"{seconds / base_seconds:.2f}x")
            if report is not None:
                report.record(
                    name, wall_ms=seconds * 1e3, vs_baseline=seconds / base_seconds
                )
        table.print()


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_degradation_is_sound_and_bounded(bench_report):
    bench_report.smoke = True
    run_degradation(SMOKE_CONFIG, smoke=True, report=bench_report)


def test_breaker_trips_and_recovers(bench_report):
    bench_report.smoke = True
    run_breaker(SMOKE_CONFIG, smoke=True, report=bench_report)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="E20 resilience benchmark")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, correctness checks only (CI wiring)",
    )
    args = parser.parse_args()
    config = SMOKE_CONFIG if args.smoke else CONFIG
    report = BenchReport("resilience", smoke=args.smoke)
    run_degradation(config, smoke=args.smoke, report=report)
    run_breaker(config, smoke=args.smoke, report=report)
    run_overhead(config, smoke=args.smoke, report=report)
    print(f"\nwrote {report.write()}")
    print("E20 ok" + (" (smoke)" if args.smoke else ""))
