"""E7 — The four c-table strategies of [36]: answers and runtimes.

The paper states strict containments between the answer sets of the four
algorithms (eager ⊆ semi-eager/lazy ⊆ aware), the identity
``Q+ = Eval_e,t`` / ``Q? = Eval_e,p`` (Theorem 4.9), and that the
conditional machinery is the price paid for the extra precision.  The
benchmark reports answer counts and timings per strategy.
"""

from __future__ import annotations

import pytest

from repro.algebra import builder as rb, evaluate
from repro.approx import translate_guagliardo16
from repro.bench import ResultTable, time_call
from repro.ctables import STRATEGIES, run_strategy
from repro.datamodel import Database, Null, Relation
from repro.incomplete import certain_answers_with_nulls
from repro.workloads import GeneratorConfig, RelationSpec, generate_database


def _nested_difference_db():
    null = Null("e7")
    return Database(
        {
            "R": Relation(("A",), [(1,), (2,), (3,)]),
            "S": Relation(("A",), [(null,), (2,)]),
            "T": Relation(("A",), [(1,), (null,)]),
        }
    )


QUERY = rb.difference(rb.relation("R"), rb.difference(rb.relation("S"), rb.relation("T")))


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_runtime(benchmark, strategy):
    # Kept small: the aware strategy grounds conditions that mention every
    # tuple of the subtracted relations, which is exponential in the number
    # of nulls occurring in those conditions.
    config = GeneratorConfig(
        relations=[RelationSpec("R", ["a"], 10), RelationSpec("S", ["a"], 6), RelationSpec("T", ["a"], 5)],
        domain_size=8,
        null_rate=0.08,
        seed=5,
    )
    db = generate_database(config)
    benchmark.pedantic(lambda: run_strategy(strategy, QUERY, db), rounds=2, iterations=1)


def test_strategy_answer_comparison(benchmark):
    db = _nested_difference_db()

    def run():
        results = {s: run_strategy(s, QUERY, db) for s in STRATEGIES}
        truth = certain_answers_with_nulls(QUERY, db)
        pair = translate_guagliardo16(QUERY, db.schema())
        plus = evaluate(pair.certain, db)
        maybe = evaluate(pair.possible, db)
        return results, truth, plus, maybe

    results, truth, plus, maybe = benchmark(run)

    table = ResultTable(
        "E7: c-table strategies vs Figure 2b on R − (S − T)",
        ["procedure", "certain answers", "possible answers", "sound"],
    )
    for strategy in STRATEGIES:
        result = results[strategy]
        table.add_row(
            f"Eval_{strategy}",
            len(result.certain),
            len(result.possible),
            result.certain.rows_set() <= truth.rows_set(),
        )
    table.add_row("Q+/Q? (Figure 2b)", len(plus), len(maybe), plus.rows_set() <= truth.rows_set())
    table.add_row("exact cert⊥", len(truth), "-", True)
    table.print()

    # Theorem 4.9 identity and the containment chain.
    assert results["eager"].certain.rows_set() == plus.rows_set()
    assert results["eager"].possible.rows_set() == maybe.rows_set()
    assert (
        results["eager"].certain.rows_set()
        <= results["lazy"].certain.rows_set()
        <= results["aware"].certain.rows_set()
        <= truth.rows_set()
    )
