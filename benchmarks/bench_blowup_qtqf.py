"""E5 — Blow-up of the Figure 2a scheme vs Figure 2b as the database grows.

The paper reports that the (Qt, Qf) translation of [51] is already
infeasible on instances with fewer than 10³ tuples because of the
active-domain Cartesian products, whereas the (Q+, Q?) translation of
[37] scales.  The benchmark measures both rewritings of the same
difference query over growing databases and reports the crossover; it
also ablates the unification anti-semijoin strategy (hashed vs nested).
"""

from __future__ import annotations

import pytest

from repro.algebra import builder as rb, evaluate
from repro.algebra.evaluator import Evaluator
from repro.approx import translate_guagliardo16, translate_libkin16
from repro.bench import ResultTable, time_call
from repro.workloads import GeneratorConfig, RelationSpec, generate_database

SIZES = (10, 25, 60)


def _database(rows: int):
    config = GeneratorConfig(
        relations=[RelationSpec("R", ["a", "b"], rows), RelationSpec("S", ["a", "b"], rows // 2)],
        domain_size=max(4, rows),
        null_rate=0.1,
        seed=rows,
    )
    return generate_database(config)


QUERY = rb.difference(rb.relation("R"), rb.relation("S"))


@pytest.mark.parametrize("rows", SIZES)
def test_figure2b_scaling(benchmark, rows):
    db = _database(rows)
    pair = translate_guagliardo16(QUERY, db.schema())
    benchmark(lambda: evaluate(pair.certain, db))


def test_blowup_summary(benchmark):
    def measure():
        rows_out = []
        for rows in SIZES:
            db = _database(rows)
            schema = db.schema()
            plus = translate_guagliardo16(QUERY, schema)
            qtqf = translate_libkin16(QUERY, schema)
            plus_time, _ = time_call(lambda: evaluate(plus.certain, db), repeat=1)
            # Qf of the Figure 2a translation materialises Dom^2 products.
            qf_time, qf_result = time_call(lambda: evaluate(qtqf.certainly_false, db), repeat=1)
            dom_square = len(db.active_domain()) ** 2
            rows_out.append((rows, plus_time * 1000, qf_time * 1000, dom_square, len(qf_result)))
        return rows_out

    rows_out = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = ResultTable(
        "E5: Figure 2a (Qt,Qf) vs Figure 2b (Q+,Q?) as the database grows",
        ["rows per relation", "Q+ time (ms)", "Qf time (ms)", "|Dom|^2 materialised", "|Qf(D)|"],
    )
    for row in rows_out:
        table.add_row(*row)
    table.print()

    # Shape: the Qf cost grows much faster than the Q+ cost (driven by |Dom|^2),
    # and the materialised domain square dwarfs the relations it came from.
    first, last = rows_out[0], rows_out[-1]
    qf_growth = last[2] / max(first[2], 1e-6)
    qplus_growth = last[1] / max(first[1], 1e-6)
    assert qf_growth > qplus_growth
    assert last[3] > 8 * first[3]
    assert last[3] > 30 * SIZES[-1]


def test_unif_antijoin_strategy_ablation(benchmark):
    db = _database(60)
    pair = translate_guagliardo16(QUERY, db.schema())

    def run_both():
        hashed = Evaluator(unif_strategy="hashed").evaluate(pair.certain, db)
        nested = Evaluator(unif_strategy="nested").evaluate(pair.certain, db)
        return hashed, nested

    hashed, nested = benchmark(run_both)
    assert hashed.rows_set() == nested.rows_set()
